"""Operand-kind validation: hand cases + audits of all generated code."""

import pytest

from repro.isa import EXEC, Kernel, inst, parse, sreg, vreg
from repro.isa.validator import (
    assert_valid,
    validate_instruction,
    validate_kernel,
    validate_program,
)


class TestInstructionKinds:
    def test_clean_valu(self):
        assert validate_instruction(inst("v_add", vreg(1), vreg(2), sreg(3))) == []

    def test_clean_salu(self):
        assert validate_instruction(inst("s_add", sreg(1), sreg(2), 3)) == []

    def test_salu_rejects_vector_src(self):
        problems = validate_instruction(inst("s_add", sreg(1), vreg(2), 3))
        assert problems and "scalar" in problems[0]

    def test_salu_rejects_vector_dst(self):
        problems = validate_instruction(inst("s_mov", vreg(1), sreg(2)))
        assert problems

    def test_valu_rejects_scalar_dst(self):
        problems = validate_instruction(inst("v_mov", sreg(1), vreg(2)))
        assert problems and "dst" in problems[0]

    def test_load_address_must_be_vector(self):
        problems = validate_instruction(inst("global_load", vreg(1), sreg(2), 0))
        assert problems and "src0" in problems[0]

    def test_load_offset_must_be_imm(self):
        problems = validate_instruction(
            inst("global_load", vreg(1), vreg(2), vreg(3))
        )
        assert problems and "src1" in problems[0]

    def test_store_data_must_be_vector(self):
        problems = validate_instruction(
            inst("global_store", vreg(1), sreg(2), 0)
        )
        assert problems

    def test_ctx_store_s_accepts_special(self):
        assert validate_instruction(inst("ctx_store_s", EXEC, 0)) == []

    def test_ctx_store_v_rejects_scalar(self):
        problems = validate_instruction(inst("ctx_store_v", sreg(1), 0))
        assert problems

    def test_branch_requires_label(self):
        assert validate_instruction(inst("s_branch", "LOOP")) == []
        # a label where a value belongs
        problems = validate_instruction(inst("v_mov", vreg(1), "LOOP"))
        assert problems and "label" in problems[0]

    def test_s_load_scalar_address(self):
        assert validate_instruction(inst("s_load", sreg(1), sreg(2), 0)) == []
        assert validate_instruction(inst("s_load", sreg(1), vreg(2), 0))


class TestProgramAndKernel:
    def test_positions_reported(self):
        program = parse("s_nop\ns_add s1, v2, 3\ns_endpgm")
        problems = validate_program(program)
        assert problems and problems[0].startswith("@1:")

    def test_lds_declaration_consistency(self):
        with_lds_no_use = Kernel(
            "k", parse("s_endpgm"), 4, 4, lds_bytes=256
        )
        assert validate_kernel(with_lds_no_use)
        use_without_decl = Kernel(
            "k2", parse("lds_read v1, v2, 0\ns_endpgm"), 4, 4
        )
        assert validate_kernel(use_without_decl)

    def test_assert_valid_raises_with_details(self):
        kernel = Kernel("bad", parse("s_add s1, v2, 3\ns_endpgm"), 4, 4)
        with pytest.raises(ValueError, match="bad"):
            assert_valid(kernel)


class TestAudits:
    """The validator as an invariant over everything the repo generates."""

    def test_all_benchmark_kernels_are_well_typed(self):
        from repro.kernels import SUITE

        for key, bench in SUITE.items():
            for warp_size in (8, 64):
                assert_valid(bench.build(warp_size))

    @pytest.mark.parametrize("mechanism", ["baseline", "live", "csdefer", "ctxback"])
    def test_generated_routines_are_well_typed(self, loop_kernel, small_config, mechanism):
        from repro.mechanisms import make_mechanism

        prepared = make_mechanism(mechanism).prepare(loop_kernel, small_config)
        for plan in prepared.plans.values():
            assert validate_program(plan.preempt_routine) == []
            assert validate_program(plan.resume_routine) == []

    def test_osrb_instrumented_kernels_are_well_typed(self):
        from repro.ctxback.osrb import apply_osrb
        from repro.isa import RegisterFileSpec
        from repro.kernels import SUITE

        spec = RegisterFileSpec(warp_size=64)
        for bench in SUITE.values():
            instrumented, _ = apply_osrb(bench.build(64), spec)
            assert_valid(instrumented)
