"""Fault injection for the experiment engine.

Kills pool workers mid-unit, hangs them past the unit timeout, raises from
units, returns unpicklable results — and asserts the engine's retry /
fallback machinery always converges: every run either completes with
results bit-identical to a clean serial run, or fails loudly per the
configured :class:`~repro.analysis.engine.FailurePolicy`.

When ``REPRO_FAULTS_REPORT`` names a file, the module writes the engine
failure counters observed across these tests there as JSON (CI uploads it
next to ``BENCH_engine.json``).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.analysis.engine import (
    FAULT_KILL_ENV,
    EngineFailure,
    EngineOptions,
    ExperimentEngine,
    FailurePolicy,
    UnitFailure,
)
from repro.analysis.experiments import fig7_context_size

from .test_engine_cache import _figure_rows, cache_at

#: engine reports observed by the tests (dumped to $REPRO_FAULTS_REPORT)
_REPORTS: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def _faults_report():
    yield
    target = os.environ.get("REPRO_FAULTS_REPORT", "").strip()
    if target and _REPORTS:
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(_REPORTS, fh, indent=2)


def _record(engine: ExperimentEngine) -> None:
    _REPORTS.append(engine.report.as_dict())


# -- picklable fault units --------------------------------------------------------
#
# Each unit's first-attempt fault is gated on an O_CREAT|O_EXCL marker file,
# so exactly one attempt misbehaves and every retry succeeds.


def _claim(marker: str) -> bool:
    """True exactly once per marker path (atomic across processes)."""
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError:
        return False
    os.close(fd)
    return True


@dataclass(frozen=True)
class OkUnit:
    value: int

    def run(self) -> int:
        return self.value


@dataclass(frozen=True)
class CrashOnceUnit:
    """SIGKILLs its worker on the first attempt, succeeds afterwards."""

    marker: str
    value: int = -1

    def run(self) -> int:
        if _claim(self.marker):
            os.kill(os.getpid(), signal.SIGKILL)
        return self.value


@dataclass(frozen=True)
class HangOnceUnit:
    """Outlives any sane unit timeout on the first attempt only."""

    marker: str
    hang_s: float = 30.0
    value: int = -2

    def run(self) -> int:
        if _claim(self.marker):
            time.sleep(self.hang_s)
        return self.value


@dataclass(frozen=True)
class HangUnit:
    """Hangs on every attempt (tests retry exhaustion on timeouts)."""

    hang_s: float = 30.0

    def run(self) -> None:
        time.sleep(self.hang_s)


@dataclass(frozen=True)
class RaiseUnit:
    """Fails deterministically on every attempt, pool or in-process."""

    message: str = "boom"

    def run(self) -> None:
        raise ValueError(self.message)


@dataclass(frozen=True)
class UnpicklableResultUnit:
    """Succeeds in the worker, but its result cannot cross the pipe; only
    the serial in-process fallback can deliver it."""

    def run(self):
        return lambda: 42  # noqa: E731 - deliberately unpicklable


FAST = EngineOptions(
    unit_timeout=5.0,
    retries=2,
    failure_policy=FailurePolicy.FAIL_FAST,
    retry_backoff_s=0.01,
)


def _engine(jobs=2, **overrides) -> ExperimentEngine:
    opts = EngineOptions(**{**FAST.__dict__, **overrides})
    return ExperimentEngine(jobs, options=opts)


# -- worker death -----------------------------------------------------------------


def test_worker_crash_is_retried_and_results_stay_ordered(tmp_path):
    units = [OkUnit(0), CrashOnceUnit(str(tmp_path / "kill")), OkUnit(2), OkUnit(3)]
    engine = _engine()
    results = engine.map(units)
    assert results == [0, -1, 2, 3]
    assert engine.report.crashes >= 1
    assert engine.report.retries >= 1
    assert engine.report.failures == 0
    _record(engine)


def test_crash_survivors_finished_before_abort_are_not_rerun(tmp_path):
    """A wave aborted by a crash still harvests futures that completed
    before teardown — their results arrive exactly once, in order."""
    units = [OkUnit(i) for i in range(6)]
    units[5] = CrashOnceUnit(str(tmp_path / "kill"), value=99)
    engine = _engine(jobs=3)
    assert engine.map(units) == [0, 1, 2, 3, 4, 99]
    _record(engine)


# -- hangs and the unit timeout ---------------------------------------------------


def test_hung_unit_is_timed_out_and_retried(tmp_path):
    units = [OkUnit(0), HangOnceUnit(str(tmp_path / "hang")), OkUnit(2)]
    engine = _engine(unit_timeout=1.0)
    assert engine.map(units) == [0, -2, 2]
    assert engine.report.timeouts >= 1
    assert engine.report.failures == 0
    _record(engine)


def test_timeout_exhaustion_skips_serial_fallback(tmp_path):
    """A unit that times out on every attempt must NOT be retried
    in-process (nothing bounds it there) — it fails per policy."""
    engine = _engine(
        unit_timeout=0.5, retries=1, failure_policy=FailurePolicy.COLLECT
    )
    results = engine.map([OkUnit(1), HangUnit()])
    assert results[0] == 1
    assert isinstance(results[1], UnitFailure)
    assert "TimeoutError" in results[1].error
    assert engine.report.timeouts == 2  # initial attempt + one retry
    assert engine.report.fallbacks == 0
    assert engine.report.failures == 1
    _record(engine)


# -- deterministic unit errors ----------------------------------------------------


def test_fail_fast_raises_engine_failure():
    engine = _engine(retries=0)
    with pytest.raises(EngineFailure, match="boom"):
        engine.map([OkUnit(1), RaiseUnit()])
    assert engine.report.failures == 1
    _record(engine)


def test_collect_policy_substitutes_unit_failure_markers():
    engine = _engine(retries=0, failure_policy=FailurePolicy.COLLECT)
    results = engine.map([OkUnit(1), RaiseUnit("first"), RaiseUnit("second")])
    assert results[0] == 1
    assert [f.error for f in results[1:]] == [
        "ValueError: first",
        "ValueError: second",
    ]
    assert engine.report.failures == 2
    assert engine.report.failed_units == [repr(RaiseUnit("first")),
                                          repr(RaiseUnit("second"))]
    _record(engine)


def test_serial_map_applies_collect_policy():
    engine = ExperimentEngine(
        1, options=EngineOptions(failure_policy=FailurePolicy.COLLECT)
    )
    results = engine.map([OkUnit(7), RaiseUnit(), OkUnit(9)])
    assert results[0] == 7 and results[2] == 9
    assert isinstance(results[1], UnitFailure)
    assert results[1].attempts == 1


def test_unpicklable_result_lands_via_serial_fallback():
    engine = _engine(retries=1)
    results = engine.map([OkUnit(1), UnpicklableResultUnit(), OkUnit(3)])
    assert results[0] == 1 and results[2] == 3
    assert callable(results[1]) and results[1]() == 42
    assert engine.report.fallbacks == 1
    assert engine.report.failures == 0
    _record(engine)


# -- the acceptance sweep ---------------------------------------------------------


def _flip_byte(path) -> None:
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))


def test_faulted_parallel_sweep_matches_clean_serial_run(
    tmp_path_factory, monkeypatch
):
    """The headline guarantee: kill a pool worker mid-unit AND corrupt a
    cache entry, and a jobs=2 fig7 sweep still completes with rows
    bit-identical to a clean jobs=1 run."""
    clean_root = tmp_path_factory.mktemp("cache-clean")
    with cache_at(clean_root):
        truth = _figure_rows(
            fig7_context_size(keys=["ge"], engine=ExperimentEngine(1))
        )

    faulty_root = tmp_path_factory.mktemp("cache-faulty")
    with cache_at(faulty_root):  # warm the store we are about to damage
        fig7_context_size(keys=["ge"], engine=ExperimentEngine(1))
    weights_entries = list((faulty_root / "weights").glob("*.pkl"))
    assert weights_entries
    _flip_byte(weights_entries[0])  # checksum-detectable bit flip

    monkeypatch.setenv(FAULT_KILL_ENV, str(tmp_path_factory.mktemp("f") / "kill"))
    engine = ExperimentEngine(2, options=FAST)
    with cache_at(faulty_root) as cache:
        fig7 = fig7_context_size(keys=["ge"], engine=engine)
        invalidations = cache.stats.invalidations
    assert _figure_rows(fig7) == truth
    assert engine.report.crashes >= 1  # the injected SIGKILL landed
    assert invalidations >= 1  # the bit flip was caught and healed
    assert engine.report.failures == 0
    _record(engine)


# -- deterministic retry backoff --------------------------------------------------


def test_retry_backoff_jitter_derives_from_unit_content_not_wall_clock():
    """Regression: the pool's retry backoff once jittered off the clock,
    which broke run-to-run reproducibility of engine timing decisions.
    The delay must be a pure function of (base, attempt, unit keys)."""
    from repro.analysis.engine import retry_delay

    keys = ["aaaa", "bbbb", "cccc"]
    first = retry_delay(0.1, 2, keys)
    time.sleep(0.05)  # a clock-derived jitter would drift across calls
    assert retry_delay(0.1, 2, keys) == first
    # order-insensitive over the retried wave, sensitive to its content
    assert retry_delay(0.1, 2, ["cccc", "aaaa", "bbbb"]) == first
    assert retry_delay(0.1, 2, ["dddd"]) != first
    # exponential envelope: base*2^(attempt-1) plus at most 50% jitter
    assert 0.2 <= first <= 0.3
    assert retry_delay(0.1, 3, keys) == pytest.approx(2 * first)
    # the historical 2 s cap survives the jitter
    assert retry_delay(1.5, 4, keys) == 2.0


# -- chaos sweep crash-resume, twinned across execution cores ---------------------


def _chaos_units(core: str):
    import dataclasses

    from repro.faults.chaos import ChaosUnit
    from repro.sim import GPUConfig

    config = dataclasses.replace(GPUConfig.small(4), core=core)
    return [
        ChaosUnit("mm", mechanism, "ctx-bitflip", seed=3, config=config,
                  iterations=4)
        for mechanism in ("ckpt", "ctxback")
    ]


def test_chaos_checkpoint_crash_resume_twins_across_cores(
    tmp_path_factory, monkeypatch
):
    """``repro chaos --checkpoint`` under a seeded worker kill: the sweep
    survives the crash via retries, a resume replays nothing, and the
    verdicts are identical whether the fast or the reference core ran."""
    verdicts = {}
    for core in ("fast", "reference"):
        root = tmp_path_factory.mktemp(f"chaos-{core}")
        ckpt = root / "sweep.rsnp"
        units = _chaos_units(core)

        # run 1: the seeded kill point SIGKILLs a pool worker mid-sweep
        monkeypatch.setenv(FAULT_KILL_ENV, str(root / "kill-marker"))
        first = _engine(jobs=2)
        with cache_at(root / "cache"):
            results = first.map(units, checkpoint=ckpt)
        monkeypatch.delenv(FAULT_KILL_ENV)
        assert first.report.crashes >= 1  # the kill landed
        assert first.report.failures == 0
        assert all(r["ok"] for r in results)

        # run 2: resume from the checkpoint — nothing re-executes
        resumed = _engine(jobs=2)
        with cache_at(root / "cache"):
            assert resumed.map(units, checkpoint=ckpt) == results
        assert resumed.report.checkpoint_hits == len(units)
        _record(first)
        verdicts[core] = results

    # config content differs per core, so neither leg reused the other's
    # cache — byte-equality here is a genuine twin-core check
    assert verdicts["fast"] == verdicts["reference"]
