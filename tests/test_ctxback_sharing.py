"""Dedicated-routine sharing (paper §IV-A)."""

import pytest

from repro.ctxback import share_routines
from repro.kernels import SUITE
from repro.mechanisms import make_mechanism
from repro.sim import GPUConfig

CONFIG = GPUConfig.small(warp_size=8)


@pytest.fixture(scope="module")
def dot_prepared():
    launch = SUITE["dot"].launch(warp_size=8, iterations=6)
    return make_mechanism("ctxback").prepare(launch.kernel, CONFIG)


class TestSharing:
    def test_prepare_already_shares(self, dot_prepared):
        stats = share_routines(dot_prepared.plans)  # idempotent second pass
        assert stats.unique_preempt < stats.positions

    def test_shared_programs_are_identical_objects(self, dot_prepared):
        by_key = {}
        for plan in dot_prepared.plans.values():
            key = tuple(plan.preempt_routine.instructions)
            if key in by_key:
                assert plan.preempt_routine is by_key[key]
            else:
                by_key[key] = plan.preempt_routine

    def test_paper_claim_only_several_routines(self, dot_prepared):
        """Load-phase signals share their loop-top flashback routine."""
        stats = share_routines(dot_prepared.plans)
        assert stats.sharing_factor >= 1.5
        assert 0.0 <= stats.saved_fraction < 1.0
        assert stats.shared_bytes <= stats.naive_bytes

    def test_sharing_preserves_functional_correctness(self, dot_prepared):
        from repro.sim import run_preemption_experiment

        launch = SUITE["dot"].launch(warp_size=8, iterations=6)
        n = len(dot_prepared.kernel.program.instructions)
        for dyn in (2 * n + 3, 3 * n + 11):
            result = run_preemption_experiment(
                launch.spec(), dot_prepared, CONFIG, signal_dyn=dyn, resume_gap=200
            )
            assert result.verified

    def test_stats_fields_consistent(self, dot_prepared):
        stats = share_routines(dot_prepared.plans)
        assert stats.positions == len(dot_prepared.plans)
        assert stats.unique_resume >= 1
        assert stats.naive_bytes >= stats.shared_bytes > 0

    def test_empty_plans(self):
        stats = share_routines({})
        assert stats.positions == 0
        assert stats.sharing_factor == 1.0
        assert stats.saved_fraction == 0.0
