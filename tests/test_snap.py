"""Snapshot/restore (``repro.snap``), speculative checkpointing, live
migration, and engine crash-resume tests.

The core oracle throughout: a snapshot taken mid-flight must restore —
onto the same configuration, a retimed one, or the other execution core —
and drive to a completion that is bit-identical in device memory and in
the per-warp architectural digest to the run that never stopped.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.engine import (
    EngineOptions,
    ExperimentEngine,
    FailurePolicy,
    UnitFailure,
    unit_key,
)
from repro.faults.plan import scenario
from repro.kernels import SUITE
from repro.mechanisms import make_mechanism
from repro.serve.migration import (
    MigrationCosts,
    MigrationEvent,
    migration_costs_for,
    plan_migrations,
    shard_events,
)
from repro.serve.scheduler import MechanismCosts, simulate_shard
from repro.serve.tenants import Tenant
from repro.sim import GPUConfig, run_preemption_experiment
from repro.sim.digest import arch_digest
from repro.sim.memory import DeviceMemory, TrackedMemory
from repro.snap import (
    SNAP_MAGIC,
    SnapshotError,
    SpeculativeCheckpoint,
    complete_experiment,
    decode_snapshot,
    encode_snapshot,
    load_snapshot,
    restore_experiment,
    restore_memory,
    run_snapshot_experiment,
    save_snapshot,
)
from repro.snap.units import run_snap_roundtrip


def _setup(key: str, mechanism: str, config: GPUConfig, iterations: int = 6):
    bench = SUITE[key]
    launch = bench.launch(warp_size=config.warp_size, iterations=iterations)
    prepared = make_mechanism(mechanism).prepare(launch.kernel, config)
    signal_dyn = 3 * len(launch.kernel.program.instructions) + 7
    return launch, prepared, signal_dyn


# -- format: fail-closed framing + canonical round-trips ---------------------------


class TestFormat:
    PAYLOAD = {
        "meta": {"version": 1, "label": "x"},
        "array": np.arange(12, dtype=np.uint32).reshape(3, 4),
        "floats": np.linspace(0.0, 1.0, 5),
        "blob": b"\x00\x01\xfe\xff",
        "tuple": (1, "two", (3, None)),
        "set": {5, 2, 9},
        "int_keys": {3: "c", 1: "a", 2: ("b", b"bb")},
        "scalars": [None, True, False, 0, -7, 3.25, "s"],
        "tagged_key": {"~nd": "not an array, just a hostile key"},
    }

    def test_round_trip_preserves_tricky_values(self):
        back = decode_snapshot(encode_snapshot(self.PAYLOAD))
        assert np.array_equal(back["array"], self.PAYLOAD["array"])
        assert back["array"].dtype == np.uint32
        assert back["array"].shape == (3, 4)
        assert np.array_equal(back["floats"], self.PAYLOAD["floats"])
        assert back["blob"] == self.PAYLOAD["blob"]
        assert back["tuple"] == self.PAYLOAD["tuple"]
        assert back["set"] == self.PAYLOAD["set"]
        assert back["int_keys"] == self.PAYLOAD["int_keys"]
        assert back["scalars"] == self.PAYLOAD["scalars"]
        assert back["tagged_key"] == self.PAYLOAD["tagged_key"]

    def test_encoding_is_byte_deterministic(self):
        data = encode_snapshot(self.PAYLOAD)
        assert encode_snapshot(decode_snapshot(data)) == data

    def test_bad_magic_rejected(self):
        data = bytearray(encode_snapshot({"a": 1}))
        data[:4] = b"JUNK"
        with pytest.raises(SnapshotError):
            decode_snapshot(bytes(data))

    def test_future_version_rejected(self):
        data = bytearray(encode_snapshot({"a": 1}))
        data[4:8] = (99).to_bytes(4, "little")
        with pytest.raises(SnapshotError):
            decode_snapshot(bytes(data))

    def test_payload_bitflip_rejected(self):
        data = bytearray(encode_snapshot({"a": 1}))
        data[-1] ^= 0x40  # flip a bit in the compressed payload
        with pytest.raises(SnapshotError):
            decode_snapshot(bytes(data))

    def test_truncation_rejected(self):
        data = encode_snapshot({"a": list(range(100))})
        assert data.startswith(SNAP_MAGIC)
        for cut in (0, 3, 10, len(data) - 1):
            with pytest.raises(SnapshotError):
                decode_snapshot(data[:cut])

    def test_non_finite_float_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(SnapshotError):
                encode_snapshot({"x": bad})


# -- whole-device round-trips ------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("mechanism", ["baseline", "ctxback"])
    def test_same_config_roundtrip(self, small_config, mechanism):
        verdict = run_snap_roundtrip(
            "dc", mechanism, config=small_config, iterations=6
        )
        assert verdict["captured"]
        assert verdict["deterministic"]
        assert verdict["memory_ok"]
        assert verdict["registers_ok"]
        assert verdict["cycles_match"]
        assert verdict["ok"]

    def test_cross_config_cross_core_roundtrip(self, small_config):
        """A fast-core snapshot restores onto a reference-core device with
        different context-traffic timing; memory and registers must still
        converge bit-identically (cycles legitimately differ)."""
        ctx = small_config.ctx_bytes_per_cycle
        other = dataclasses.replace(
            small_config,
            core="reference",
            ctx_bytes_per_cycle=ctx / 2 if ctx else ctx,
        )
        verdict = run_snap_roundtrip(
            "dc", "ctxback",
            config=small_config, restore_config=other, iterations=6,
        )
        assert verdict["ok"]
        assert verdict["memory_ok"]
        assert verdict["registers_ok"]
        assert not verdict["same_config"]

    def test_save_load_file_roundtrip(self, small_config, tmp_path):
        launch, prepared, signal = _setup("dc", "ctxback", small_config)
        payload, _ = run_snapshot_experiment(
            launch.spec(), prepared, small_config, signal,
            snap_on_evicted=True, label="dc",
        )
        assert payload is not None
        path = tmp_path / "dc.rsnp"
        size = save_snapshot(path, payload)
        assert path.stat().st_size == size
        back = load_snapshot(path)
        assert encode_snapshot(back) == encode_snapshot(payload)

    def test_restore_rejects_mismatched_geometry(self, small_config):
        launch, prepared, signal = _setup("dc", "ctxback", small_config)
        payload, _ = run_snapshot_experiment(
            launch.spec(), prepared, small_config, signal,
            snap_on_evicted=True,
        )
        wide = GPUConfig.small(warp_size=8)
        wide_launch, wide_prepared, _ = _setup("dc", "ctxback", wide)
        with pytest.raises(SnapshotError):
            restore_experiment(
                payload, wide_launch.spec(), wide_prepared, wide
            )

    def test_restore_rejects_mechanism_mismatch(self, small_config):
        launch, prepared, signal = _setup("dc", "ctxback", small_config)
        payload, _ = run_snapshot_experiment(
            launch.spec(), prepared, small_config, signal,
            snap_on_evicted=True,
        )
        _, other_prepared, _ = _setup("dc", "baseline", small_config)
        with pytest.raises(SnapshotError):
            restore_experiment(
                payload, launch.spec(), other_prepared, small_config
            )


# -- snapshots taken mid-fault-recovery (chaos round-trips) ------------------------


class TestChaosSnapshot:
    @pytest.mark.parametrize("restore_core", ["fast", "reference"])
    def test_mid_fault_snapshot_restores_bit_identical(
        self, small_config, restore_core
    ):
        """Snapshot an experiment with an armed fault plan at the eviction
        point, restore it (same core and cross-core), and require the
        completed run to match the never-stopped faulted run in memory and
        in the chaos oracle's architectural digest."""
        launch, prepared, signal = _setup("dc", "ctxback", small_config)
        plan = scenario("ctx-bitflip", seed=0)

        straight = run_preemption_experiment(
            launch.spec(), prepared, small_config, signal,
            verify=False, faults=scenario("ctx-bitflip", seed=0),
        )
        payload, _ = run_snapshot_experiment(
            launch.spec(), prepared, small_config, signal,
            snap_on_evicted=True, faults=plan, label="chaos",
        )
        assert payload is not None
        assert payload["injector"] is not None  # armed fault state travels

        restore_config = dataclasses.replace(small_config, core=restore_core)
        restored = restore_experiment(
            decode_snapshot(encode_snapshot(payload)),
            launch.spec(), prepared, restore_config,
            faults=scenario("ctx-bitflip", seed=0),
        )
        finished = complete_experiment(restored)

        assert finished.memory == straight.memory
        warp_ids = {m.warp_id for m in straight.measurements}
        degraded = {m.warp_id for m in straight.measurements if m.degraded}
        assert arch_digest(
            finished.sm, warp_ids, lds_only=degraded
        ) == arch_digest(straight.sm, warp_ids, lds_only=degraded)
        if restore_core == small_config.core:
            assert finished.total_cycles == straight.total_cycles

    def test_restore_without_fault_plan_fails_closed(self, small_config):
        launch, prepared, signal = _setup("dc", "ctxback", small_config)
        payload, _ = run_snapshot_experiment(
            launch.spec(), prepared, small_config, signal,
            snap_on_evicted=True, faults=scenario("ctx-bitflip", seed=0),
        )
        assert payload is not None
        with pytest.raises(SnapshotError):
            restore_experiment(payload, launch.spec(), prepared, small_config)


# -- speculative checkpointing -----------------------------------------------------


def _at_capture_point(sm, controller, state) -> bool:
    return (
        not state["resumed"]
        and state["resume_at"] is not None
        and sm.cycle >= state["resume_at"]
        and controller.all_evicted()
    )


def _image_words(payload: dict) -> np.ndarray:
    memory = DeviceMemory(size_bytes=payload["memory"]["size_bytes"])
    restore_memory(payload["memory"], memory)
    return memory._words


class TestSpeculative:
    def _run(self, config, *, corrupt: bool = False) -> dict:
        launch, prepared, signal = _setup("va", "ctxback", config)
        out: dict = {"calls": 0}

        def hook(sm, controller, target_warps, state) -> None:
            out["calls"] += 1
            if out["calls"] == 1:
                ckpt = SpeculativeCheckpoint(sm, controller, label="va")
                ckpt.begin()
                out["ckpt"] = ckpt
            elif "report" not in out and _at_capture_point(
                sm, controller, state
            ):
                if corrupt:
                    # a write that bypasses the tracked store path: the
                    # base+patch image cannot represent it
                    sm.memory._words[len(sm.memory._words) - 1] = 0xDEAD
                out["report"] = out["ckpt"].commit(loop=state)
                out["words"] = sm.memory._words.copy()

        run_preemption_experiment(
            launch.spec(), prepared, config, signal,
            verify=False, memory=TrackedMemory(), loop_hook=hook,
        )
        assert "report" in out, "capture point never reached"
        return out

    def test_validated_commit_matches_blocking_image(self, small_config):
        out = self._run(small_config)
        report = out["report"]
        assert report.mode == "speculative"
        assert report.validated
        assert 0 < report.patch_words < report.base_words
        # base+patch reconstructs exactly the memory at the commit point
        assert np.array_equal(_image_words(report.payload), out["words"])
        # and the whole payload survives the wire format
        back = decode_snapshot(encode_snapshot(report.payload))
        assert np.array_equal(_image_words(back), out["words"])

    def test_untracked_write_degrades_to_stop_the_world(self, small_config):
        out = self._run(small_config, corrupt=True)
        report = out["report"]
        assert report.mode == "fallback"
        assert not report.validated
        # the fallback recapture still serializes the *actual* memory,
        # rogue write included — never a stale base+patch image
        assert np.array_equal(_image_words(report.payload), out["words"])
        assert int(out["words"][-1]) == 0xDEAD

    def test_commit_before_begin_rejected(self, small_config, loop_launch):
        from repro.sim.gpu import build_launch

        sm, _, _ = build_launch(loop_launch, small_config)
        ckpt = SpeculativeCheckpoint(sm)
        with pytest.raises(SnapshotError):
            ckpt.commit()

    def test_tracked_memory_epochs(self):
        memory = TrackedMemory(size_bytes=4096)
        memory.store_word(8, 1)
        memory.begin_epoch()
        memory.store_word(16, 2)
        memory.store_array(32, np.asarray([3, 4], dtype=np.uint32))
        epoch = memory.end_epoch()
        assert epoch == [4, 8, 9]  # word indices, sorted; pre-epoch excluded
        assert memory.end_epoch() == []  # closed epoch records nothing
        assert memory.dirty_words() == [2, 4, 8, 9]


# -- engine crash-resume -----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class LogUnit:
    """Test unit: appends its tag to a log file, returns it uppercased."""

    tag: str
    log: str
    fail: bool = False

    def run(self) -> str:
        with open(self.log, "a") as fh:
            fh.write(self.tag + "\n")
        if self.fail:
            raise RuntimeError(f"unit {self.tag} failed")
        return self.tag.upper()


def _log_lines(path) -> list[str]:
    return path.read_text().splitlines() if path.exists() else []


class TestEngineCheckpoint:
    def test_unit_key_is_content_addressed(self, tmp_path):
        a1 = LogUnit("a", str(tmp_path / "log"))
        a2 = LogUnit("a", str(tmp_path / "log"))
        b = LogUnit("b", str(tmp_path / "log"))
        assert unit_key(a1) == unit_key(a2)
        assert unit_key(a1) != unit_key(b)

    def test_resume_skips_completed_units(self, tmp_path):
        log, ckpt = tmp_path / "log", tmp_path / "ckpt.rsnp"
        units = [LogUnit("a", str(log)), LogUnit("b", str(log))]
        first = ExperimentEngine(jobs=1)
        assert first.map(units, checkpoint=ckpt) == ["A", "B"]
        assert _log_lines(log) == ["a", "b"]
        assert first.report.checkpoint_hits == 0

        resumed = ExperimentEngine(jobs=1)
        assert resumed.map(units, checkpoint=ckpt) == ["A", "B"]
        assert _log_lines(log) == ["a", "b"]  # nothing re-executed
        assert resumed.report.checkpoint_hits == 2

    def test_resume_runs_only_new_units(self, tmp_path):
        log, ckpt = tmp_path / "log", tmp_path / "ckpt.rsnp"
        ExperimentEngine(jobs=1).map(
            [LogUnit("a", str(log))], checkpoint=ckpt
        )
        engine = ExperimentEngine(jobs=1)
        results = engine.map(
            [LogUnit("a", str(log)), LogUnit("b", str(log))], checkpoint=ckpt
        )
        assert results == ["A", "B"]
        assert _log_lines(log) == ["a", "b"]  # a was not re-executed
        assert engine.report.checkpoint_hits == 1

    def test_corrupt_checkpoint_recomputes_everything(self, tmp_path):
        log, ckpt = tmp_path / "log", tmp_path / "ckpt.rsnp"
        units = [LogUnit("a", str(log)), LogUnit("b", str(log))]
        ExperimentEngine(jobs=1).map(units, checkpoint=ckpt)
        ckpt.write_bytes(b"not a snapshot at all")

        engine = ExperimentEngine(jobs=1)
        assert engine.map(units, checkpoint=ckpt) == ["A", "B"]
        assert engine.report.checkpoint_hits == 0
        assert _log_lines(log) == ["a", "b", "a", "b"]
        # and the rewrite left a valid checkpoint behind
        fresh = ExperimentEngine(jobs=1)
        fresh.map(units, checkpoint=ckpt)
        assert fresh.report.checkpoint_hits == 2

    def test_failed_units_are_retried_on_resume(self, tmp_path):
        log, ckpt = tmp_path / "log", tmp_path / "ckpt.rsnp"
        options = EngineOptions(
            retries=0, failure_policy=FailurePolicy.COLLECT,
            retry_backoff_s=0.0,
        )
        units = [
            LogUnit("a", str(log)),
            LogUnit("x", str(log), fail=True),
        ]
        first = ExperimentEngine(jobs=1, options=options)
        results = first.map(units, checkpoint=ckpt)
        assert results[0] == "A"
        assert isinstance(results[1], UnitFailure)
        ran_x = _log_lines(log).count("x")
        assert ran_x >= 1

        # the failure was not persisted: a resume skips only "a" and
        # attempts the failed unit again
        resumed = ExperimentEngine(jobs=1, options=options)
        results = resumed.map(units, checkpoint=ckpt)
        assert resumed.report.checkpoint_hits == 1
        assert isinstance(results[1], UnitFailure)
        assert _log_lines(log).count("a") == 1
        assert _log_lines(log).count("x") > ran_x


# -- live migration: planner + scheduler accounting --------------------------------


TENANT = Tenant(
    name="rt", priority=1, service_us=10.0, slo_us=1000.0, weight=1.0
)
COSTS = MechanismCosts("test", preempt_us=7.0, resume_us=5.0)
MIG = MigrationCosts(snapshot_us=3.0, transfer_us=2.0, restore_us=4.0)


class TestMigrationPlanning:
    def test_cost_model_scales_with_snapshot_bytes(self, small_config):
        small = migration_costs_for(1000, small_config)
        large = migration_costs_for(2000, small_config)
        assert small.snapshot_us < large.snapshot_us
        assert small.transfer_us < large.transfer_us
        assert small.restore_us < large.restore_us
        # the load path is faster than the store path (ctx_load_speedup)
        if small_config.ctx_load_speedup > 1.0:
            assert small.restore_us < small.snapshot_us

    def test_cost_model_rejects_bad_link(self, small_config):
        with pytest.raises(ValueError):
            migration_costs_for(1000, small_config, link_bytes_per_us=0.0)

    def test_planner_validates_parameters(self):
        with pytest.raises(ValueError):
            plan_migrations([(), ()], (TENANT,), epoch_us=0.0)
        with pytest.raises(ValueError):
            plan_migrations([(), ()], (TENANT,), epoch_us=100.0, factor=0.5)

    def test_planner_moves_batch_off_the_hot_gpu(self):
        hot = tuple((float(t), 0) for t in range(0, 90, 10))  # 9 requests
        shards = [hot, ()]
        events = plan_migrations(
            shards, (TENANT,), epoch_us=100.0, factor=1.5
        )
        assert events == [MigrationEvent(time_us=100.0, src=0, dst=1)]
        # pure + deterministic: identical inputs replan identically
        assert events == plan_migrations(
            shards, (TENANT,), epoch_us=100.0, factor=1.5
        )

    def test_planner_conserves_hosted_jobs(self):
        rng_shards = [
            tuple((float(13 * i % 700), 0) for i in range(40)),
            tuple((float(29 * i % 700), 0) for i in range(5)),
            (),
        ]
        events = plan_migrations(
            rng_shards, (TENANT,), epoch_us=150.0, factor=1.2
        )
        hosted = [1] * len(rng_shards)
        for event in events:
            assert hosted[event.src] > 0  # never migrates a job that isn't there
            hosted[event.src] -= 1
            hosted[event.dst] += 1
        assert sum(hosted) == len(rng_shards)

    def test_shard_events_split(self):
        events = [
            MigrationEvent(time_us=100.0, src=0, dst=1),
            MigrationEvent(time_us=200.0, src=1, dst=0),
        ]
        streams = shard_events(events, gpus=2)
        assert streams[0] == ((100.0, "out"), (200.0, "in"))
        assert streams[1] == ((100.0, "in"), (200.0, "out"))


class TestMigrationAccounting:
    def test_migrations_require_costs(self):
        with pytest.raises(ValueError):
            simulate_shard(
                [(0.0, 0)], (TENANT,), COSTS, migrations=((0.0, "out"),)
            )

    def test_no_migration_baseline(self):
        result = simulate_shard([(0.0, 0)], (TENANT,), COSTS)
        assert result.episodes == 1
        # preempt to open the episode + trailing resume to close it
        assert result.overhead_us == pytest.approx(12.0)
        assert result.latencies == [(0, pytest.approx(17.0))]
        assert result.migrations_out == 0 and result.migrations_in == 0

    def test_migrated_out_gpu_serves_overhead_free(self):
        result = simulate_shard(
            [(0.0, 0)], (TENANT,), COSTS,
            migrations=((0.0, "out"),), migration=MIG,
        )
        assert result.migrations_out == 1
        assert result.migration_us == pytest.approx(MIG.snapshot_us)
        # no batch job left: no episode, no preempt/resume overhead —
        # the request only waits out the snapshot pause
        assert result.episodes == 0
        assert result.overhead_us == 0.0
        assert result.latencies == [(0, pytest.approx(13.0))]

    def test_migration_in_restores_batch_after_transfer(self):
        result = simulate_shard(
            [(0.0, 0), (50.0, 0)], (TENANT,), COSTS,
            migrations=((0.0, "out"), (20.0, "in")), migration=MIG,
        )
        assert result.migrations_out == 1
        assert result.migrations_in == 1
        assert result.migration_us == pytest.approx(
            MIG.snapshot_us + MIG.restore_us
        )
        # the first request ran batch-free; the second, arriving after
        # the restore, pays a fresh preemption episode again
        assert result.episodes == 1
        assert result.overhead_us == pytest.approx(12.0)
        assert result.latencies[0] == (0, pytest.approx(13.0))
        assert result.latencies[1] == (0, pytest.approx(17.0))

    def test_duplicate_out_is_ignored(self):
        result = simulate_shard(
            [(0.0, 0)], (TENANT,), COSTS,
            migrations=((0.0, "out"), (1.0, "out")), migration=MIG,
        )
        assert result.migrations_out == 1
        assert result.migration_us == pytest.approx(MIG.snapshot_us)

    def test_consolidated_gpu_keeps_batch_until_last_job_leaves(self):
        # host a second batch job first ("in"), then one "out": a batch
        # job remains, so episodes still pay preempt/resume
        result = simulate_shard(
            [(50.0, 0)], (TENANT,), COSTS,
            migrations=((0.0, "in"), (10.0, "out")), migration=MIG,
        )
        assert result.migrations_in == 1
        assert result.migrations_out == 1
        assert result.episodes == 1
        assert result.overhead_us == pytest.approx(12.0)


class TestServeMigration:
    @pytest.fixture(scope="class")
    def report(self, request):
        from repro.serve import TraceSpec, run_serve

        small = GPUConfig.small(warp_size=4)
        kwargs = dict(
            trace=TraceSpec(kind="bursty"),
            loads=(0.6,),
            requests=400,
            gpus=2,
            key="dc",
            config=small,
            iterations=6,
            samples=1,
            migrate=True,
        )
        first = run_serve(("baseline", "ctxback"), **kwargs)
        second = run_serve(
            ("baseline", "ctxback"),
            engine=ExperimentEngine(jobs=2),
            **kwargs,
        )
        return first, second

    def test_migration_section_and_events(self, report):
        first, _ = report
        section = first["migration"]
        assert set(section["snapshot_bytes"]) == {"baseline", "ctxback"}
        # the paper's argument carried into serving: CTXBack's smaller
        # context makes its snapshot — hence its migration — cheaper
        assert (
            section["snapshot_bytes"]["ctxback"]
            < section["snapshot_bytes"]["baseline"]
        )
        for cell in first["results"]:
            mig = cell["migrations"]
            assert mig["out"] == mig["in"]
            assert mig["out"] > 0  # the bursty trace actually migrates
            assert mig["migration_us"] > 0.0

    def test_report_bit_identical_across_jobs(self, report):
        from repro.serve import render_serve_json

        first, second = report
        assert render_serve_json(first) == render_serve_json(second)


# -- migration under concurrent GPU failure ----------------------------------------
#
# Live migration and the fleet fault model interleave: a GPU can die while
# its batch job's snapshot is in flight.  The planner's ledger must land
# every job exactly once — completing on the target when the snapshot left
# the source in time, re-routing the snapshot when the target dies first —
# and the simulated shards must mirror that ledger in their own counters.


class TestMigrationUnderFailure:
    FLEET_TENANT = (
        Tenant("rt", priority=1, service_us=100.0, slo_us=1000.0, weight=1.0),
    )
    FLEET_MIG = MigrationCosts(
        snapshot_us=40.0, transfer_us=100.0, restore_us=20.0
    )

    def _plan(self, schedule):
        from repro.serve import FleetEvent, ResilienceKnobs, plan_resilience

        del FleetEvent  # imported for callers building schedules
        shards = [((0.0, 0), (3000.0, 0)), ((1.0, 0),), ((2.0, 0),)]
        return plan_resilience(
            shards, self.FLEET_TENANT, MechanismCosts("x", 0.0, 0.0),
            tuple(schedule), self.FLEET_MIG,
            knobs=ResilienceKnobs(ckpt_cadence_us=1000.0),
        )

    def _simulate(self, plan):
        from repro.serve import simulate_resilient_shard

        return [
            simulate_resilient_shard(
                plan.streams[g], self.FLEET_TENANT,
                MechanismCosts("x", 0.0, 0.0), gpu=g,
                crash_at=plan.crash_at[g], ops=plan.ops[g],
                ckpt_cadence_us=1000.0,
            )
            for g in range(3)
        ]

    def test_source_crash_after_snapshot_leaves_completes_on_target(self):
        from repro.serve import FleetEvent

        # the watchdog moves gpu0's job out at t=1000 (snapshot + transfer
        # already departed); gpu0 dies at 1100 — the migration completes on
        # the target anyway, and the crash finds nothing left to fail over
        plan = self._plan([
            FleetEvent("gpu_degrade", 250.0, 0, duration_us=0.0, factor=3.0),
            FleetEvent("gpu_crash", 1100.0, 0),
        ])
        results = self._simulate(plan)
        assert results[0].crashed and results[0].migrations_out == 1
        survivors = [g for g in (1, 2) if plan.crash_at[g] is None]
        landed = [g for g in survivors if results[g].restores_in == 1]
        assert len(landed) == 1  # exactly one target, exactly one restore
        assert results[landed[0]].migration_us > 0.0
        assert sum(results[g].hosted_end for g in survivors) == 3

    def test_target_crash_before_restore_reroutes_snapshot_once(self):
        from repro.serve import FleetEvent

        # find where the watchdog migration would land, then kill that
        # target just before the restore applies
        probe = self._plan([
            FleetEvent("gpu_degrade", 250.0, 0, duration_us=0.0, factor=3.0),
        ])
        (target, restore_op) = next(
            (g, op)
            for g in (1, 2)
            for op in probe.ops[g]
            if op[1] == "restore"
        )
        plan = self._plan([
            FleetEvent("gpu_degrade", 250.0, 0, duration_us=0.0, factor=3.0),
            FleetEvent("gpu_crash", restore_op[0] - 1.0, target),
        ])
        results = self._simulate(plan)
        survivor = next(g for g in (1, 2) if g != target)
        # the in-flight snapshot re-routed to the survivor, which also
        # absorbs the dead target's own batch job: two restores, and the
        # dead target never executes one — the job never runs twice
        assert results[survivor].restores_in == 2
        assert results[target].restores_in == 0
        assert results[survivor].hosted_end == 3
        assert [f.kind for f in plan.failovers].count("rerouted") == 1
