"""Instruction reverting: opportunity detection + executed-inverse identity.

The crown property: for every reversible opcode, executing the instruction
and then the constructed inverse restores the overwritten register exactly,
for arbitrary 32-bit operand values — checked through the real executor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctxback import build_revert_instruction, revert_opportunities
from repro.isa import Imm, ReversibilityModel, inst, vreg, sreg
from repro.sim import DeviceMemory, Executor, WarpState
from repro.isa.instruction import Program

WARP = 4


def _warp():
    return WarpState(num_vregs=16, num_sregs=16, warp_size=WARP)


def _execute(warp, instruction):
    Executor(DeviceMemory(1 << 16)).execute(
        Program([instruction]), warp, instruction
    )
    warp.pc = 0


class TestOpportunities:
    def test_shared_register_required(self):
        assert revert_opportunities(inst("v_add", vreg(1), vreg(2), vreg(3))) == []
        ops = revert_opportunities(inst("v_add", vreg(1), vreg(1), vreg(3)))
        assert [o.src_pos for o in ops] == [0]

    def test_both_positions_of_commutative_add(self):
        ops = revert_opportunities(inst("v_add", vreg(1), vreg(2), vreg(1)))
        assert [o.src_pos for o in ops] == [1]

    def test_fully_self_referential_rejected(self):
        # ADD r, r, r: the "other" operand is the lost value itself
        assert revert_opportunities(inst("v_add", vreg(1), vreg(1), vreg(1))) == []

    def test_irreversible_op(self):
        assert revert_opportunities(inst("v_mul", vreg(1), vreg(1), vreg(2))) == []

    def test_lshl_gated_by_model(self):
        shl = inst("v_lshl", vreg(1), vreg(1), 3)
        assert revert_opportunities(shl, ReversibilityModel.EXACT) == []
        assert len(revert_opportunities(shl, ReversibilityModel.PAPER)) == 1

    def test_immediate_other_operand_ok(self):
        ops = revert_opportunities(inst("v_add", vreg(1), vreg(1), 42))
        assert len(ops) == 1


class TestBuildRevert:
    def test_add_inverse_is_sub(self):
        original = inst("v_add", vreg(1), vreg(1), vreg(3))
        [op] = revert_opportunities(original)
        inverse = build_revert_instruction(
            original, op, dst_reg=vreg(1), new_reg=vreg(1), other_regs={1: vreg(3)}
        )
        assert inverse == inst("v_sub", vreg(1), vreg(1), vreg(3))

    def test_inverse_can_target_any_registers(self):
        original = inst("v_add", vreg(1), vreg(1), vreg(3))
        [op] = revert_opportunities(original)
        inverse = build_revert_instruction(
            original, op, dst_reg=vreg(7), new_reg=vreg(8), other_regs={1: vreg(9)}
        )
        assert inverse == inst("v_sub", vreg(7), vreg(8), vreg(9))

    def test_immediates_carried_over(self):
        original = inst("v_add", vreg(1), vreg(1), 42)
        [op] = revert_opportunities(original)
        inverse = build_revert_instruction(
            original, op, dst_reg=vreg(1), new_reg=vreg(1), other_regs={}
        )
        assert inverse == inst("v_sub", vreg(1), vreg(1), 42)

    def test_sub_position_one_swaps_pattern(self):
        # r' = a - b, recover b: b = a - r'
        original = inst("v_sub", vreg(1), vreg(3), vreg(1))
        ops = revert_opportunities(original)
        [op] = [o for o in ops if o.src_pos == 1]
        inverse = build_revert_instruction(
            original, op, dst_reg=vreg(1), new_reg=vreg(1), other_regs={0: vreg(3)}
        )
        assert inverse == inst("v_sub", vreg(1), vreg(3), vreg(1))


u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


@settings(max_examples=200, deadline=None)
@given(
    mnemonic=st.sampled_from(["v_add", "v_sub", "v_xor"]),
    shared_pos=st.integers(0, 1),
    shared_vals=st.lists(u32, min_size=WARP, max_size=WARP),
    other_vals=st.lists(u32, min_size=WARP, max_size=WARP),
)
def test_execute_then_revert_is_identity(mnemonic, shared_pos, shared_vals, other_vals):
    """op followed by its constructed inverse restores the old value exactly."""
    shared, other = vreg(1), vreg(2)
    srcs = [other, other]
    srcs[shared_pos] = shared
    original = inst(mnemonic, shared, *srcs)
    opportunities = revert_opportunities(original)
    matching = [o for o in opportunities if o.src_pos == shared_pos]
    if not matching:
        return  # e.g. v_sub position constraints
    [op] = matching

    warp = _warp()
    warp.vregs[1, :] = np.array(shared_vals, dtype=np.uint32)
    warp.vregs[2, :] = np.array(other_vals, dtype=np.uint32)
    before = warp.vregs[1].copy()
    _execute(warp, original)
    inverse = build_revert_instruction(
        original, op, dst_reg=shared, new_reg=shared, other_regs={1 - shared_pos: other}
    )
    _execute(warp, inverse)
    assert np.array_equal(warp.vregs[1], before)


@settings(max_examples=100, deadline=None)
@given(vals=st.lists(u32, min_size=WARP, max_size=WARP), imm=u32)
def test_unary_not_and_imm_forms_revert(vals, imm):
    warp = _warp()
    warp.vregs[1, :] = np.array(vals, dtype=np.uint32)
    before = warp.vregs[1].copy()

    original = inst("v_xor", vreg(1), vreg(1), Imm(imm))
    [op] = revert_opportunities(original)
    _execute(warp, original)
    inverse = build_revert_instruction(original, op, vreg(1), vreg(1), {})
    _execute(warp, inverse)
    assert np.array_equal(warp.vregs[1], before)

    original = inst("v_not", vreg(1), vreg(1))
    [op] = revert_opportunities(original)
    _execute(warp, original)
    inverse = build_revert_instruction(original, op, vreg(1), vreg(1), {})
    _execute(warp, inverse)
    assert np.array_equal(warp.vregs[1], before)


@settings(max_examples=100, deadline=None)
@given(val=u32, other=u32, mnemonic=st.sampled_from(["s_add", "s_sub", "s_xor"]))
def test_scalar_revert_identity(val, other, mnemonic):
    warp = _warp()
    warp.sregs[4] = val
    warp.sregs[5] = other
    original = inst(mnemonic, sreg(4), sreg(4), sreg(5))
    [op] = [o for o in revert_opportunities(original) if o.src_pos == 0]
    _execute(warp, original)
    inverse = build_revert_instruction(original, op, sreg(4), sreg(4), {1: sreg(5)})
    _execute(warp, inverse)
    assert warp.sregs[4] == val
