"""SM-flushing, SM-draining and Chimera (paper §II-B / §VI extensions)."""

import pytest

from repro.isa import Kernel, parse
from repro.kernels import SUITE
from repro.mechanisms import (
    Chimera,
    ChimeraPolicy,
    EXTENSION_MECHANISMS,
    FlushNotIdempotent,
    expected_dyn_for,
    make_mechanism,
)
from repro.sim import GPUConfig, run_preemption_experiment

CONFIG = GPUConfig.small(warp_size=8)


@pytest.fixture(scope="module")
def mm_setup():
    bench = SUITE["mm"]
    launch = bench.launch(warp_size=8, iterations=8, num_warps=2)
    n = len(launch.kernel.program.instructions)
    return launch, n


class TestFlush:
    def test_registered(self):
        assert "flush" in EXTENSION_MECHANISMS

    def test_near_zero_latency_and_full_replay(self, mm_setup):
        launch, n = mm_setup
        prepared = make_mechanism("flush").prepare(launch.kernel, CONFIG)
        result = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=3 * n + 5, resume_gap=300
        )
        assert result.verified
        live = make_mechanism("live").prepare(launch.kernel, CONFIG)
        live_result = run_preemption_experiment(
            launch.spec(), live, CONFIG, signal_dyn=3 * n + 5, resume_gap=300
        )
        # instant release, but all progress is wasted on resume
        assert result.mean_latency < live_result.mean_latency
        assert result.mean_resume > live_result.mean_resume

    def test_rejects_aliasing_kernels(self):
        kernel = Kernel(
            "aliasing",
            parse(
                """
                global_load v1, v2, 0
                v_add v1, v1, 1
                global_store v2, v1, 0
                s_endpgm
                """
            ),
            8,
            8,
            noalias=False,
        )
        with pytest.raises(FlushNotIdempotent):
            make_mechanism("flush").prepare(kernel, CONFIG)

    def test_accepts_store_only_kernels(self):
        kernel = Kernel(
            "store_only",
            parse("v_mov v1, 7\nglobal_store v2, v1, 0\ns_endpgm"),
            8,
            8,
            noalias=False,
        )
        make_mechanism("flush").prepare(kernel, CONFIG)  # no raise


class TestDrain:
    def test_zero_resume_and_context(self, mm_setup):
        launch, n = mm_setup
        prepared = make_mechanism("drain").prepare(launch.kernel, CONFIG)
        result = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=3 * n + 5, resume_gap=300
        )
        assert result.verified
        for m in result.measurements:
            assert m.resume_cycles == 0
            assert m.context_bytes == 0

    def test_latency_is_remaining_execution(self, mm_setup):
        launch, n = mm_setup
        expected = expected_dyn_for(launch.kernel, 8)
        prepared = make_mechanism("drain").prepare(launch.kernel, CONFIG)
        early = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=n, resume_gap=300
        )
        late = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=expected - 30,
            resume_gap=300,
        )
        # the earlier the signal, the longer the wait for completion
        assert early.mean_latency > late.mean_latency


class TestChimeraPolicy:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            ChimeraPolicy(flush_below=0.9, drain_above=0.1)

    def test_three_way_choice(self):
        policy = ChimeraPolicy(flush_below=0.2, drain_above=0.8)
        assert policy.choose(0.05) == "drop"
        assert policy.choose(0.5) == "switch"
        assert policy.choose(0.95) == "drain"

    def test_expected_dyn_counts_loop_iterations(self):
        kernel = SUITE["va"].build(8)
        once = expected_dyn_for(kernel, 1)
        twice = expected_dyn_for(kernel, 2)
        loop_len = twice - once
        assert loop_len > 0
        assert expected_dyn_for(kernel, 10) == once + 9 * loop_len

    def test_expected_dyn_requires_positive(self):
        with pytest.raises(ValueError):
            Chimera(expected_dyn=0)


class TestChimeraIntegration:
    @pytest.fixture(scope="class")
    def chimera(self, mm_setup):
        launch, _ = mm_setup
        expected = expected_dyn_for(launch.kernel, 8)
        return Chimera(expected_dyn=expected).prepare(launch.kernel, CONFIG), expected

    def test_early_signal_flushes(self, mm_setup, chimera):
        launch, _ = mm_setup
        prepared, _expected = chimera
        result = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=3, resume_gap=200
        )
        assert result.verified
        assert all(m.context_bytes <= 16 for m in result.measurements)

    def test_mid_signal_context_switches(self, mm_setup, chimera):
        launch, n = mm_setup
        prepared, expected = chimera
        result = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=expected // 2,
            resume_gap=200,
        )
        assert result.verified
        # a real CTXBack context was saved
        assert all(m.context_bytes > 100 for m in result.measurements)
        assert all(m.flashback_pos is not None for m in result.measurements)

    def test_late_signal_drains(self, mm_setup, chimera):
        launch, _ = mm_setup
        prepared, expected = chimera
        result = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=expected - 15,
            resume_gap=200,
        )
        assert result.verified
        assert all(m.resume_cycles == 0 for m in result.measurements)

    def test_latency_never_exceeds_pure_baseline(self, mm_setup, chimera):
        """Chimera's whole point: bounded waiting at every progress point."""
        launch, n = mm_setup
        prepared, expected = chimera
        baseline = make_mechanism("baseline").prepare(launch.kernel, CONFIG)
        for dyn in (3, expected // 2, expected - 15):
            chi = run_preemption_experiment(
                launch.spec(), prepared, CONFIG, signal_dyn=dyn, resume_gap=200
            )
            base = run_preemption_experiment(
                launch.spec(), baseline, CONFIG, signal_dyn=dyn, resume_gap=200
            )
            assert chi.mean_latency <= base.mean_latency * 1.05, dyn
