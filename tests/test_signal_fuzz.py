"""Signal-timing fuzz: preempt at *every* dynamic instruction, and
explore *every interleaving* of multi-warp multi-signal deliveries.

The preempt-anywhere guarantee is only as strong as the signal positions
the tests exercise.  The single-signal sweep delivers the preemption
signal at every dynamic instruction of a small kernel — including
position 0 (before the first issue) and one past the end (the signal
never fires) — for every evaluated mechanism, and requires the final
memory image to be bit-identical to the uninterrupted run each time.

The multi-signal tier hands the same kernel to the model checker
(:mod:`repro.mc`): both warps are signalled inside sliding dynamic
windows and the bounded interleaving space is exhausted with the full MC
invariant set (round completion, accounting, exec/PC coherence, terminal
memory equality, context races) as the oracle.  A bounded subset runs
tier-1; the full 6-mechanism × 2-round product is `full_sweep`-marked
and opt-in via ``REPRO_FULL_SWEEP=1``.

Kept deliberately small (3 loop iterations, 4-lane warps) so the tier-1
portion stays inside a few seconds; CI runs it on every push.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.isa import Kernel, parse
from repro.mc import McModel, McOptions, clean_reference, explore
from repro.mechanisms import make_mechanism
from repro.sim import (
    GPUConfig,
    LaunchSpec,
    run_preemption_experiment,
    run_reference,
)

MECHANISMS = ["baseline", "live", "ckpt", "csdefer", "ctxback", "combined"]

ITERATIONS = 3

FUZZ_SRC = """
    v_lshl v1, v0, 0x2
    v_add  v2, v1, s0
    v_add  v3, v1, s1
    s_mov  s4, 0
LOOP:
    global_load v4, v2, 0
    v_mul  v5, v4, 3
    v_add  v5, v5, 7
    global_store v3, v5, 0
    v_add  v2, v2, s3
    v_add  v3, v3, s3
    s_add  s4, s4, 1
    s_cmp_lt s4, s2
    s_cbranch_scc1 LOOP
    s_endpgm
"""


@pytest.fixture(scope="module")
def fuzz_launch() -> LaunchSpec:
    kernel = Kernel(
        "fuzz-scale", parse(FUZZ_SRC), vgprs_used=8, sgprs_used=8,
        noalias=True, warps_per_block=2,
    )

    def setup_memory(memory):
        memory.store_array(0x1000, np.arange(128, dtype=np.uint32) * 13 + 5)

    def setup_warp(state, index):
        span = ITERATIONS * state.warp_size * 4
        state.sregs[0] = 0x1000 + index * span
        state.sregs[1] = 0x8000 + index * span
        state.sregs[2] = ITERATIONS
        state.sregs[3] = state.warp_size * 4
        state.vregs[0, :] = np.arange(state.warp_size)

    return LaunchSpec(
        kernel=kernel, setup_memory=setup_memory, setup_warp=setup_warp
    )


def _total_dyn(launch: LaunchSpec, config: GPUConfig) -> int:
    """Dynamic instructions one warp executes, read off the clean run."""
    result = run_reference(launch, config)
    return max(warp.dyn_count for warp in result.sm.warps)


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_preempt_at_every_dynamic_instruction(fuzz_launch, mechanism):
    config = GPUConfig.small(warp_size=4)
    reference = run_reference(fuzz_launch, config)
    prepared = make_mechanism(mechanism).prepare(fuzz_launch.kernel, config)
    total = _total_dyn(fuzz_launch, config)
    assert total > len(fuzz_launch.kernel.program.instructions)  # loop ran
    failures = []
    for signal_dyn in range(total + 2):  # 0 .. one-past-the-end inclusive
        result = run_preemption_experiment(
            fuzz_launch, prepared, config,
            signal_dyn=signal_dyn, resume_gap=50,
            verify=False,  # one shared reference: cheaper than per-signal
        )
        if result.memory != reference.memory:
            failures.append(signal_dyn)
    assert not failures, (
        f"{mechanism}: wrong final memory when signalled at dynamic "
        f"instruction(s) {failures} (of {total})"
    )


# -- multi-warp, multi-signal: exhaustive bounded interleavings -------------------


def _explore_fuzz(fuzz_launch, mechanism, *, rounds, window_gap=2):
    config = GPUConfig.small(warp_size=4)
    options = McOptions(warps=2, rounds=rounds, window_gap=window_gap)
    prepared = make_mechanism(mechanism).prepare(fuzz_launch.kernel, config)
    reference = clean_reference(prepared, fuzz_launch, config)

    def factory():
        return McModel(
            prepared, fuzz_launch, config, options,
            kernel="fuzz-scale", mechanism=mechanism,
        )

    return explore(
        factory, reference, options, kernel="fuzz-scale", mechanism=mechanism
    )


@pytest.mark.parametrize("mechanism", ["ctxback", "ckpt"])
def test_multi_signal_interleavings_hold_invariants(fuzz_launch, mechanism):
    """Bounded tier-1 subset: 2 warps × 1 signal each, every delivery
    placement and every schedule, checked against the MC oracle."""
    result = _explore_fuzz(fuzz_launch, mechanism, rounds=1)
    assert [f.render() for f in result.findings] == []
    assert not result.truncated
    assert result.terminals >= 1
    assert result.runs > 10  # genuinely explored, not vacuous


@pytest.mark.parametrize("window_gap", [0, 5])
def test_multi_signal_window_placement(fuzz_launch, window_gap):
    """Sliding the signal windows moves deliveries across loop
    boundaries; the invariants must hold wherever the window lands."""
    result = _explore_fuzz(
        fuzz_launch, "ctxback", rounds=1, window_gap=window_gap
    )
    assert [f.render() for f in result.findings] == []
    assert not result.truncated


@pytest.mark.full_sweep
@pytest.mark.skipif(
    not os.environ.get("REPRO_FULL_SWEEP"),
    reason="full 6-mechanism × 2-round sweep: set REPRO_FULL_SWEEP=1",
)
@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_multi_signal_full_sweep(fuzz_launch, mechanism):
    """Every mechanism, two preemption rounds per warp."""
    result = _explore_fuzz(fuzz_launch, mechanism, rounds=2)
    assert [f.render() for f in result.findings] == []
    assert not result.truncated
