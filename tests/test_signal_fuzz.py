"""Signal-timing fuzz: preempt at *every* dynamic instruction.

The preempt-anywhere guarantee is only as strong as the signal positions
the tests exercise.  This sweep delivers the preemption signal at every
dynamic instruction of a small kernel — including position 0 (before the
first issue) and one past the end (the signal never fires) — for every
evaluated mechanism, and requires the final memory image to be
bit-identical to the uninterrupted run each time.

Kept deliberately small (3 loop iterations, 4-lane warps) so the full
sweep — ~6 mechanisms × ~45 signal positions — stays inside a few
seconds; CI runs it on every push.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import Kernel, parse
from repro.mechanisms import make_mechanism
from repro.sim import (
    GPUConfig,
    LaunchSpec,
    run_preemption_experiment,
    run_reference,
)

MECHANISMS = ["baseline", "live", "ckpt", "csdefer", "ctxback", "combined"]

ITERATIONS = 3

FUZZ_SRC = """
    v_lshl v1, v0, 0x2
    v_add  v2, v1, s0
    v_add  v3, v1, s1
    s_mov  s4, 0
LOOP:
    global_load v4, v2, 0
    v_mul  v5, v4, 3
    v_add  v5, v5, 7
    global_store v3, v5, 0
    v_add  v2, v2, s3
    v_add  v3, v3, s3
    s_add  s4, s4, 1
    s_cmp_lt s4, s2
    s_cbranch_scc1 LOOP
    s_endpgm
"""


@pytest.fixture(scope="module")
def fuzz_launch() -> LaunchSpec:
    kernel = Kernel(
        "fuzz-scale", parse(FUZZ_SRC), vgprs_used=8, sgprs_used=8,
        noalias=True, warps_per_block=2,
    )

    def setup_memory(memory):
        memory.store_array(0x1000, np.arange(128, dtype=np.uint32) * 13 + 5)

    def setup_warp(state, index):
        span = ITERATIONS * state.warp_size * 4
        state.sregs[0] = 0x1000 + index * span
        state.sregs[1] = 0x8000 + index * span
        state.sregs[2] = ITERATIONS
        state.sregs[3] = state.warp_size * 4
        state.vregs[0, :] = np.arange(state.warp_size)

    return LaunchSpec(
        kernel=kernel, setup_memory=setup_memory, setup_warp=setup_warp
    )


def _total_dyn(launch: LaunchSpec, config: GPUConfig) -> int:
    """Dynamic instructions one warp executes, read off the clean run."""
    result = run_reference(launch, config)
    return max(warp.dyn_count for warp in result.sm.warps)


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_preempt_at_every_dynamic_instruction(fuzz_launch, mechanism):
    config = GPUConfig.small(warp_size=4)
    reference = run_reference(fuzz_launch, config)
    prepared = make_mechanism(mechanism).prepare(fuzz_launch.kernel, config)
    total = _total_dyn(fuzz_launch, config)
    assert total > len(fuzz_launch.kernel.program.instructions)  # loop ran
    failures = []
    for signal_dyn in range(total + 2):  # 0 .. one-past-the-end inclusive
        result = run_preemption_experiment(
            fuzz_launch, prepared, config,
            signal_dyn=signal_dyn, resume_gap=50,
            verify=False,  # one shared reference: cheaper than per-signal
        )
        if result.memory != reference.memory:
            failures.append(signal_dyn)
    assert not failures, (
        f"{mechanism}: wrong final memory when signalled at dynamic "
        f"instruction(s) {failures} (of {total})"
    )
