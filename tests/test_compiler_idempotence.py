"""Idempotent-region boundaries: the load-before-store hazard."""

from repro.compiler import (
    AliasModel,
    idempotent_region_start,
    region_is_idempotent,
)
from repro.isa import parse


def start_of(src, position, model=AliasModel.MAY_ALIAS):
    program = parse(src)
    return idempotent_region_start(program, 0, position, model)


class TestGlobalHazards:
    SRC = """
        global_load v1, v2, 0
        v_add v3, v1, v1
        global_store v4, v3, 0
        v_mov v5, 1
        s_endpgm
    """

    def test_load_then_store_breaks_region(self):
        # region for position 4 cannot include the load at 0 (position 2's
        # store may have clobbered what it read)
        assert start_of(self.SRC, 4) == 1

    def test_region_before_store_is_clean(self):
        assert start_of(self.SRC, 2) == 0

    def test_noalias_waives_global_hazard(self):
        assert start_of(self.SRC, 4, AliasModel.NO_ALIAS) == 0

    def test_store_then_load_is_fine(self):
        src = """
            global_store v4, v3, 0
            global_load v1, v2, 0
            s_endpgm
        """
        assert start_of(src, 2) == 0

    def test_store_alone_is_fine(self):
        src = "global_store v4, v3, 0\nv_mov v1, 1\ns_endpgm"
        assert start_of(src, 2) == 0


class TestLdsHazards:
    SRC = """
        lds_read v1, v2, 0
        v_max v3, v1, v4
        lds_write v2, v3, 0
        v_mov v5, 1
        s_endpgm
    """

    def test_lds_read_before_write_breaks_region(self):
        assert start_of(self.SRC, 4) == 1

    def test_lds_hazard_enforced_even_under_noalias(self):
        # noalias asserts disjoint *global* buffers; a block's LDS reads and
        # writes hit the same buffer by construction (HS regression)
        assert start_of(self.SRC, 4, AliasModel.NO_ALIAS) == 1

    def test_lds_write_then_read_is_fine(self):
        src = "lds_write v2, v3, 0\nlds_read v1, v2, 0\ns_endpgm"
        assert start_of(src, 2, AliasModel.NO_ALIAS) == 0


class TestMixedAndHelpers:
    def test_independent_spaces_do_not_interact(self):
        src = """
            global_load v1, v2, 0
            lds_write v3, v1, 0
            v_mov v4, 1
            s_endpgm
        """
        # global load followed by LDS write: no hazard in either space
        assert start_of(src, 3) == 0

    def test_smem_load_never_hazards(self):
        src = "s_load s1, s2, 0\nglobal_store v4, v3, 0\ns_endpgm"
        assert start_of(src, 2) == 0

    def test_region_is_idempotent_helper(self):
        program = parse(TestGlobalHazards.SRC)
        assert region_is_idempotent(program, 1, 4)
        assert not region_is_idempotent(program, 0, 4)

    def test_bad_bounds_rejected(self):
        import pytest

        program = parse("s_endpgm")
        with pytest.raises(ValueError):
            idempotent_region_start(program, 1, 0)
