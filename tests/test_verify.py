"""The symbolic plan verifier and lint framework (``repro.verify``).

Two layers: the whole-suite audit (every kernel × mechanism plan proves
clean, including under ``--strict``), and seeded-bug tests that corrupt one
generated artifact at a time and assert the verifier pins the corruption
with the specific finding code the catalogue promises.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.isa import EXEC, Kernel, parse, sreg, vreg
from repro.isa.instruction import Program, inst
from repro.mechanisms import ALL_MECHANISMS, make_mechanism
from repro.verify import (
    CODE_REGISTRY,
    Finding,
    LintOptions,
    Severity,
    failing,
    lint_opcode_table,
    lint_osrb,
    run_lint,
    verify_prepared,
)


def codes_of(findings) -> set[str]:
    return {finding.code for finding in findings}


def rebuild(routine: Program, edit) -> Program:
    """New Program with ``edit(position, instruction)`` applied; an edit
    returning None drops the instruction."""
    new = Program()
    for position, instruction in enumerate(routine.instructions):
        out = edit(position, instruction)
        if out is not None:
            new.append(out)
    return new


# ---------------------------------------------------------------------------
# finding model
# ---------------------------------------------------------------------------


class TestFindings:
    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unregistered"):
            Finding(code="VER999", message="nope")

    def test_registry_severities(self):
        assert CODE_REGISTRY["VER101"][0] is Severity.ERROR
        assert CODE_REGISTRY["LNT203"][0] is Severity.WARNING

    def test_render_locates(self):
        finding = Finding(
            code="VER101", message="wrong", kernel="va",
            mechanism="ctxback", position=3, where="resume",
        )
        assert "VER101" in finding.render()
        assert "va/ctxback@3:resume" in finding.render()

    def test_failing_respects_strict(self):
        warn = Finding(code="LNT203", message="dead save")
        err = Finding(code="VER101", message="wrong value")
        assert failing([warn, err]) == [err]
        assert failing([warn, err], strict=True) == [warn, err]

    def test_key_is_message_independent(self):
        a = Finding(code="VER101", message="one", kernel="va", position=1)
        b = Finding(code="VER101", message="two", kernel="va", position=1)
        assert a.key == b.key


# ---------------------------------------------------------------------------
# the whole suite proves clean
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def suite_report():
    return run_lint(LintOptions(warp_size=8, strict=True))


class TestSuiteClean:
    def test_covers_full_matrix(self, suite_report):
        assert len(suite_report.kernels) == 12
        assert set(suite_report.mechanisms) == set(ALL_MECHANISMS)
        assert suite_report.plans_verified > 0
        assert suite_report.routines_checked > 0

    def test_no_findings_even_strict(self, suite_report):
        rendered = "\n".join(f.render() for f in suite_report.findings)
        assert suite_report.findings == [], rendered
        assert suite_report.ok

    def test_opcode_table_is_legal(self):
        assert lint_opcode_table() == []

    def test_osrb_backups_unclobbered(self, suite_report):
        # part of the suite run, but assert the pass itself on the kernel
        # the paper names as the OSRB case (KM's induction variable)
        from repro.isa import RegisterFileSpec
        from repro.kernels import SUITE

        findings = lint_osrb(SUITE["km"].build(8), RegisterFileSpec(warp_size=8))
        assert findings == []


# ---------------------------------------------------------------------------
# seeded bugs: each corruption maps to its promised code
# ---------------------------------------------------------------------------


@pytest.fixture()
def ctxback_prepared(loop_kernel, small_config):
    return make_mechanism("ctxback").prepare(loop_kernel, small_config)


def verify(prepared, config):
    return verify_prepared(prepared, config.rf_spec)


def find_plan_with(prepared, routine_name, predicate):
    """(plan, position-in-routine, instruction) of the first match."""
    for n in sorted(prepared.plans):
        plan = prepared.plans[n]
        routine = getattr(plan, routine_name)
        for position, instruction in enumerate(routine.instructions):
            if predicate(instruction):
                return plan, position, instruction
    raise AssertionError(f"no {routine_name} instruction matches")


class TestSeededBugs:
    def test_clean_before_seeding(self, ctxback_prepared, small_config):
        assert verify(ctxback_prepared, small_config) == []

    def test_reload_from_unstored_slot(self, ctxback_prepared, small_config):
        plan, at, load = find_plan_with(
            ctxback_prepared, "resume_routine",
            lambda i: i.mnemonic in ("ctx_load_v", "ctx_load_s"),
        )
        plan.resume_routine = rebuild(
            plan.resume_routine,
            lambda position, instruction: (
                inst(instruction.mnemonic, instruction.dsts[0], 0x7000)
                if position == at
                else instruction
            ),
        )
        assert "VER103" in codes_of(verify(ctxback_prepared, small_config))

    def test_dropped_restore_leaves_register_undefined(
        self, ctxback_prepared, small_config
    ):
        plan, at, _ = find_plan_with(
            ctxback_prepared, "resume_routine",
            lambda i: i.mnemonic in ("ctx_load_v", "ctx_load_s"),
        )
        plan.resume_routine = rebuild(
            plan.resume_routine,
            lambda position, instruction: (
                None if position == at else instruction
            ),
        )
        codes = codes_of(verify(ctxback_prepared, small_config))
        # depending on which reload was dropped: the register stays undefined
        # (VER102), holds the wrong value (VER101/VER107 for exec), or a
        # consumer no longer proves out (VER110/VER105)
        assert codes & {"VER101", "VER102", "VER107", "VER110", "VER105"}

    def test_corrupted_revert_is_no_inverse(self, fig6_kernel, small_config):
        # Fig. 6's kernel contains no v_sub, so any in a routine is an
        # Alg. 2 inverse of a kernel v_add (the paper's worked example)
        prepared = make_mechanism("ctxback").prepare(fig6_kernel, small_config)
        assert verify(prepared, small_config) == []
        plan, at, revert = find_plan_with(
            prepared, "preempt_routine", lambda i: i.mnemonic == "v_sub"
        )

        def corrupt(position, instruction):
            if position != at:
                return instruction
            srcs = list(instruction.srcs)
            srcs[0], srcs[1] = srcs[1], srcs[0]  # wrong operand order
            return inst(instruction.mnemonic, instruction.dsts[0], *srcs)

        plan.preempt_routine = rebuild(plan.preempt_routine, corrupt)
        assert "VER111" in codes_of(verify(prepared, small_config))

    def test_wrong_resume_pc(self, ctxback_prepared, small_config):
        plan = ctxback_prepared.plans[5]
        plan.resume_pc = plan.position - 1
        assert "VER106" in codes_of(verify(ctxback_prepared, small_config))

    def test_overlapping_slots(self, ctxback_prepared, small_config):
        for n in sorted(ctxback_prepared.plans):
            plan = ctxback_prepared.plans[n]
            stores = [
                (position, instruction)
                for position, instruction in enumerate(
                    plan.preempt_routine.instructions
                )
                if instruction.mnemonic == "ctx_store_v"
            ]
            if len(stores) >= 2:
                break
        else:
            raise AssertionError("no plan saves two vector slots")
        (_, first), (second_at, _) = stores[0], stores[1]
        plan.preempt_routine = rebuild(
            plan.preempt_routine,
            lambda position, instruction: (
                inst(instruction.mnemonic, instruction.srcs[0],
                     first.srcs[1].value)
                if position == second_at
                else instruction
            ),
        )
        assert "LNT201" in codes_of(verify(ctxback_prepared, small_config))

    def test_undefined_read_in_resume(self, ctxback_prepared, small_config):
        plan = ctxback_prepared.plans[5]
        poison = Program()
        poison.append(inst("v_add", vreg(6), vreg(6), 1))
        for instruction in plan.resume_routine.instructions:
            poison.append(instruction)
        plan.resume_routine = poison
        codes = codes_of(verify(ctxback_prepared, small_config))
        assert "VER110" in codes
        assert "VER105" in codes  # and the op itself proves nothing

    def test_wrong_context_accounting(self, ctxback_prepared, small_config):
        ctxback_prepared.plans[5].context_bytes += 4
        assert "VER109" in codes_of(verify(ctxback_prepared, small_config))

    def test_dead_save_is_a_warning(self, ctxback_prepared, small_config):
        plan = ctxback_prepared.plans[5]
        plan.preempt_routine = rebuild(
            plan.preempt_routine,
            lambda position, instruction: instruction,
        )
        plan.preempt_routine.append(inst("ctx_store_v", vreg(7), 0x6000))
        findings = verify(ctxback_prepared, small_config)
        dead = [f for f in findings if f.code == "LNT203"]
        assert dead and dead[0].severity is Severity.WARNING
        # warnings block only strict runs
        assert [f for f in failing(findings) if f.code == "LNT203"] == []
        assert [f for f in failing(findings, strict=True) if f.code == "LNT203"]

    def test_missing_plan_position(self, ctxback_prepared, small_config):
        del ctxback_prepared.plans[5]
        assert "VER106" in codes_of(verify(ctxback_prepared, small_config))

    def test_ckpt_site_accounting(self, loop_kernel, small_config):
        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        assert verify(prepared, small_config) == []
        probe_id, site = next(iter(sorted(prepared.ckpt_sites.items())))
        prepared.ckpt_sites[probe_id] = dataclasses.replace(
            site, nbytes=site.nbytes + 4
        )
        assert "VER112" in codes_of(verify(prepared, small_config))


# ---------------------------------------------------------------------------
# structural lints, seeded
# ---------------------------------------------------------------------------


class TestSeededLints:
    def test_illegal_revert_table_entry(self, monkeypatch):
        from repro.isa import opcodes

        spec = opcodes.OPCODES["v_add"]
        bad = dataclasses.replace(
            spec,
            mnemonic="v_badd",
            # consumes no surviving operand although v_add has one
            revert={1: opcodes.RevertSpec("v_sub", ("new", "new"))},
        )
        monkeypatch.setitem(opcodes.OPCODES, "v_badd", bad)
        findings = lint_opcode_table()
        assert codes_of(findings) == {"LNT206"}
        assert any("v_badd" in f.where for f in findings)

    def test_clobbered_osrb_backup(self, monkeypatch):
        from repro.isa import RegisterFileSpec
        from repro.verify import lint as lint_mod

        # s9 is past the original kernel's sgprs_used=9, i.e. an OSRB backup;
        # the s_add kills it inside the same (single) block before any
        # signal could use it
        program = parse(
            "s_mov s9, s1\n"
            "s_add s9, s9, 1\n"
            "global_store v1, v0, 0\n"
            "s_endpgm"
        )
        instrumented = Kernel("osrb-demo", program, vgprs_used=2, sgprs_used=10)
        kernel = Kernel("osrb-demo", parse("s_endpgm"), vgprs_used=2,
                        sgprs_used=9)

        class _Report:
            backups = [object()]

        monkeypatch.setattr(
            lint_mod, "apply_osrb",
            lambda k, rf_spec, model: (instrumented, _Report()),
        )
        findings = lint_osrb(kernel, RegisterFileSpec(warp_size=4))
        assert codes_of(findings) == {"LNT205"}


# ---------------------------------------------------------------------------
# satellites: validator arity fix + opcode-rule coverage meta-test
# ---------------------------------------------------------------------------


class TestValidatorRuleTable:
    def test_arity_mismatch_reported_not_truncated(self, monkeypatch):
        from repro.isa import validator

        # a rule table shorter than the operand list must be flagged, not
        # silently zip-truncated past the extra operands
        monkeypatch.setitem(validator._SRC_RULES, "s_add", [{"sreg"}])
        problems = validator.validate_instruction(
            inst("s_add", sreg(1), sreg(2), 3)
        )
        assert any("rule/arity mismatch" in p for p in problems)

    def test_every_rule_matches_its_opcode_arity(self):
        from repro.isa.opcodes import OPCODES
        from repro.isa.validator import _SRC_RULES

        for mnemonic, rules in _SRC_RULES.items():
            assert mnemonic in OPCODES, mnemonic
            assert len(rules) == OPCODES[mnemonic].n_src, mnemonic

    def test_every_mnemonic_is_covered(self):
        """Every opcode is kind-checked: an explicit rule or a class rule."""
        from repro.isa.opcodes import OPCODES, OpClass
        from repro.isa.validator import _DST_RULES, _SRC_RULES

        for mnemonic, spec in OPCODES.items():
            src_covered = (
                mnemonic in _SRC_RULES
                or spec.opclass in (OpClass.VALU, OpClass.SALU)
                or mnemonic.startswith("s_cmp_")
                or spec.n_src == 0
            )
            assert src_covered, f"{mnemonic}: sources never kind-checked"
            dst_covered = (
                mnemonic in _DST_RULES
                or spec.opclass in (OpClass.VALU, OpClass.SALU)
                or spec.n_dst == 0
            )
            assert dst_covered, f"{mnemonic}: dsts never kind-checked"


class TestRoutineAudit:
    """Satellite: every generated routine passes the kind validator."""

    @pytest.mark.parametrize("name", sorted(ALL_MECHANISMS))
    def test_loop_kernel_routines_validate(self, name, loop_kernel, small_config):
        from repro.isa.validator import validate_program

        prepared = make_mechanism(name).prepare(loop_kernel, small_config)
        for position, where, routine in prepared.iter_routines():
            problems = validate_program(routine)
            assert problems == [], f"{name}@{position}:{where}: {problems}"

    def test_exec_saved_via_special_kind(self, loop_kernel, small_config):
        # regression guard for the EXEC special-register path the audit
        # depends on: baseline saves the whole file including exec
        prepared = make_mechanism("baseline").prepare(loop_kernel, small_config)
        plan = prepared.plans[5]
        saved = {
            str(i.srcs[0])
            for i in plan.preempt_routine.instructions
            if i.mnemonic == "ctx_store_s"
        }
        assert str(EXEC) in saved
