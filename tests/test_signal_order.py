"""Same-cycle signal delivery is totally ordered by ``(signal_cycle,
warp_id)`` — pinned identically in the controller's poll scan, the
reference scheduler's tie-break and the fast core's run-ahead pick, so
multi-warp preemption experiments twin bit-for-bit across cores."""

from __future__ import annotations

import dataclasses

import pytest

from repro.kernels.suite import SUITE
from repro.mechanisms import make_mechanism
from repro.obs.events import EventKind
from repro.sim import GPUConfig, run_preemption_experiment

CORES = ("reference", "fast")


def _run(core, mechanism, signal_dyn, num_warps=4):
    config = dataclasses.replace(
        GPUConfig.small(4), core=core, trace_events=True
    )
    launch = SUITE["va"].launch(
        warp_size=config.warp_size, iterations=3, num_warps=num_warps
    )
    prepared = make_mechanism(mechanism).prepare(launch.kernel, config)
    return run_preemption_experiment(
        launch.spec(), prepared, config,
        signal_dyn=signal_dyn, resume_gap=300, verify=True,
    )


def _events_key(trace):
    return [
        (e.cycle, e.kind, e.warp_id, tuple(sorted(e.data.items())))
        for e in trace.sorted_events()
    ]


def _signals(trace):
    return [
        (e.cycle, e.warp_id)
        for e in trace.sorted_events()
        if e.kind is EventKind.SIGNAL
    ]


@pytest.mark.parametrize("mechanism", ["ctxback", "ckpt", "live"])
@pytest.mark.parametrize("core", CORES)
def test_signal_delivery_ordered_by_cycle_then_warp(core, mechanism):
    """signal_dyn=0 flags every warp on the same poll: deliveries must
    come out in ascending (signal_cycle, warp_id), never scheduler order."""
    result = _run(core, mechanism, signal_dyn=0)
    signals = _signals(result.trace)
    assert len(signals) == 4  # every warp signalled exactly once
    assert signals == sorted(signals)
    assert result.verified


@pytest.mark.parametrize("mechanism", ["ctxback", "ckpt", "live"])
def test_signal_order_twins_across_cores(mechanism):
    """The full traced event stream — not just the signal subsequence —
    is identical on the reference and fast cores."""
    runs = {core: _run(core, mechanism, signal_dyn=9) for core in CORES}
    ref, fast = runs["reference"], runs["fast"]
    assert _signals(ref.trace) == _signals(fast.trace)
    assert _events_key(ref.trace) == _events_key(fast.trace)
    assert [m.signal_cycle for m in ref.measurements] == [
        m.signal_cycle for m in fast.measurements
    ]
    assert ref.total_cycles == fast.total_cycles
