"""Experiment drivers and reporting (quick configurations)."""

import pytest

from repro.analysis import (
    ablation_techniques,
    fig7_context_size,
    fig10_runtime_overhead,
    preemption_timing,
    render_fig7_summary,
    render_figure,
    render_headline,
    render_table1,
    table1_experiment,
)
from repro.analysis.experiments import HeadlineResult
from repro.sim import GPUConfig

KEYS = ("va", "km")
SMALL = GPUConfig.small(warp_size=8)


@pytest.fixture(scope="module")
def fig7():
    return fig7_context_size(config=SMALL, keys=KEYS, iterations=6)


class TestFig7:
    def test_rows_and_mechanisms(self, fig7):
        assert [row.key for row in fig7.rows] == list(KEYS)
        assert set(fig7.mechanisms()) == {
            "live", "ckpt", "csdefer", "ctxback", "combined",
        }

    def test_normalized_to_baseline(self, fig7):
        for row in fig7.rows:
            for value in row.normalized.values():
                assert 0 < value <= 1.0

    def test_ctxback_beats_live(self, fig7):
        for row in fig7.rows:
            assert row.normalized["ctxback"] <= row.normalized["live"]

    def test_min_line_is_smallest(self, fig7):
        for row in fig7.rows:
            assert row.normalized["ckpt"] <= row.normalized["ctxback"] + 1e-9

    def test_means_and_subsets(self, fig7):
        assert fig7.mean("live") == pytest.approx(
            sum(r.normalized["live"] for r in fig7.rows) / len(fig7.rows)
        )
        assert fig7.subset_mean("live", ["va"]) == fig7.rows[0].normalized["live"]
        assert 0 < fig7.mean_reduction_pct("ctxback") < 100


class TestTable1:
    def test_rows_contain_measurements(self):
        result = table1_experiment(config=SMALL, keys=KEYS, iterations=6)
        for row in result.rows:
            assert row["preempt_us"] > 0
            assert row["resume_us"] > 0
            assert row["vector_kb"] > 0

    def test_render(self):
        result = table1_experiment(config=SMALL, keys=KEYS, iterations=6)
        text = render_table1(result)
        assert "VA" in text and "KM" in text and "paper" in text


class TestTiming:
    def test_fig8_fig9_structure(self):
        fig8, fig9 = preemption_timing(
            config=SMALL, keys=KEYS, samples=1, iterations=6, verify=True
        )
        for fig in (fig8, fig9):
            assert [row.key for row in fig.rows] == list(KEYS)
            for row in fig.rows:
                assert row.normalized["baseline"] == pytest.approx(1.0)
        for row in fig8.rows:
            assert row.normalized["ctxback"] < 1.0
            assert row.normalized["ckpt"] < row.normalized["ctxback"]


class TestFig10:
    def test_overhead_shape(self):
        fig10 = fig10_runtime_overhead(config=SMALL, keys=KEYS, iterations=8)
        for row in fig10.rows:
            assert row.normalized["ckpt"] > row.normalized["ctxback"]
            assert row.normalized["ctxback"] >= 0.0
            assert row.normalized["ckpt"] > 0.0


class TestAblation:
    def test_full_is_best(self):
        data = ablation_techniques(config=SMALL, keys=("ms",), iterations=6)
        row = data.rows[0]
        assert row.normalized["full"] <= row.normalized["no_reverting"] + 1e-9
        assert row.normalized["full"] <= row.normalized["none"] + 1e-9


class TestRendering:
    def test_render_figure(self, fig7):
        text = render_figure(fig7)
        assert "MEAN" in text and "VA" in text

    def test_render_percent(self, fig7):
        assert "%" in render_figure(fig7, percent=True)

    def test_render_fig7_summary(self, fig7):
        text = render_fig7_summary(fig7)
        assert "paper 61.0%" in text

    def test_render_headline(self):
        result = HeadlineResult(
            context_reduction_pct=60.0,
            context_vs_min=1.1,
            preempt_reduction_pct=62.0,
            resume_reduction_pct=49.0,
            overhead_pct=0.3,
            csdefer_latency_vs_ctxback=1.2,
            csdefer_resume_reduction_pct=64.0,
        )
        text = render_headline(result)
        assert "61.0%" in text and "1.09x" in text


class TestTimeline:
    def test_render_timeline(self):
        from repro.analysis import render_timeline
        from repro.kernels import SUITE
        from repro.mechanisms import make_mechanism
        from repro.sim import run_preemption_experiment

        launch = SUITE["va"].launch(warp_size=8, iterations=6, num_warps=2)
        prepared = make_mechanism("ctxback").prepare(launch.kernel, SMALL)
        result = run_preemption_experiment(
            launch.spec(), prepared, SMALL, signal_dyn=30, resume_gap=200
        )
        text = render_timeline(result, SMALL)
        assert "warp 0" in text and "warp 1" in text
        assert "flashback" in text
        assert "memory verified: True" in text
        assert "resume cost" in text

    @staticmethod
    def _synthetic_result(measurements, reference_cycles):
        from repro.sim.gpu import ExperimentResult

        return ExperimentResult(
            mechanism="ctxback",
            measurements=measurements,
            total_cycles=500,
            verified=True,
            reference_cycles=reference_cycles,
        )

    def test_same_cycle_signals_sorted_by_warp_id(self):
        """Two signals in the same cycle must render in warp-id order
        regardless of measurement-list order (regression: the sort key
        used to be signal_cycle alone, leaving ties to list order)."""
        from repro.analysis import render_timeline
        from repro.sim.preemption import WarpMeasurement

        measurements = [
            WarpMeasurement(warp_id=3, signal_pc=5, signal_cycle=100,
                            latency_cycles=40),
            WarpMeasurement(warp_id=1, signal_pc=5, signal_cycle=100,
                            latency_cycles=40),
            WarpMeasurement(warp_id=2, signal_pc=5, signal_cycle=90,
                            latency_cycles=40),
        ]
        text = render_timeline(
            self._synthetic_result(measurements, None), SMALL
        )
        lines = [l for l in text.splitlines() if "signal @" in l]
        assert [l.split(":")[0].strip() for l in lines] == [
            "warp 2", "warp 1", "warp 3",
        ]

    def test_reference_cycles_none_vs_zero(self):
        """``None`` means "no reference run" (no line); ``0`` is a real
        measurement and must render without a division by zero."""
        from repro.analysis import render_timeline

        absent = render_timeline(self._synthetic_result([], None), SMALL)
        assert "uninterrupted reference" not in absent

        zero = render_timeline(self._synthetic_result([], 0), SMALL)
        assert "uninterrupted reference: 0 cycles" in zero
        assert "x)" not in zero  # no slowdown ratio for a 0-cycle reference

        nonzero = render_timeline(self._synthetic_result([], 250), SMALL)
        assert "uninterrupted reference: 250 cycles (this run: 2.00x)" in nonzero
