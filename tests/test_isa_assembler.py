"""Assembly text: parsing, error reporting, serialize/parse round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    AssemblyError,
    Imm,
    OPCODES,
    OpClass,
    inst,
    parse,
    serialize,
    sreg,
    vreg,
)
from repro.isa.instruction import Program


class TestParse:
    def test_basic_instruction(self):
        program = parse("v_add v1, v2, v3")
        assert program.instructions == [inst("v_add", vreg(1), vreg(2), vreg(3))]

    def test_comments_and_blank_lines(self):
        program = parse(
            """
            # header comment
            v_mov v1, 5   # trailing
            """
        )
        assert len(program) == 1

    def test_hex_and_negative_immediates(self):
        program = parse("v_add v1, v2, 0xFF\nv_add v3, v4, -2")
        assert program.instructions[0].srcs[1] == Imm(255)
        assert program.instructions[1].srcs[1] == Imm(-2)

    def test_label_lines_and_inline_labels(self):
        program = parse("TOP:\n s_nop\nEND: s_endpgm")
        assert program.target_index("TOP") == 0
        assert program.target_index("END") == 1

    def test_label_at_program_end(self):
        program = parse("s_nop\nDONE:")
        assert program.target_index("DONE") == 1

    def test_branch_resolution(self):
        program = parse("LOOP:\n s_cbranch_scc1 LOOP\n s_endpgm")
        assert program.instructions[0].branch_target == "LOOP"

    def test_case_insensitive_mnemonics(self):
        program = parse("V_ADD v1, v2, v3")
        assert program.instructions[0].mnemonic == "v_add"

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            parse("s_nop\ns_nop\nv_add v1, v2")

    def test_unknown_opcode_error(self):
        with pytest.raises(AssemblyError, match="v_nope"):
            parse("v_nope v1, v2, v3")

    def test_bad_operand_error(self):
        with pytest.raises(AssemblyError, match="operand"):
            parse("v_add v1, v2, 12abc!")

    def test_duplicate_label_error(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            parse("A:\nA:\ns_nop")

    def test_dangling_branch_detected(self):
        with pytest.raises(AssemblyError):
            parse("s_branch NOWHERE")

    def test_immediate_dst_rejected(self):
        with pytest.raises(AssemblyError, match="dst"):
            parse("v_add 5, v2, v3")


class TestSerialize:
    def test_labels_rendered(self):
        program = parse("LOOP:\n s_cbranch_scc1 LOOP\ns_endpgm\nEND:")
        text = serialize(program)
        assert "LOOP:" in text and "END:" in text

    def test_roundtrip_sample(self):
        source = """
        START:
            v_lshl v1, v0, 0x2
            global_load v4, v1, 0
            v_madf v8, v4, v5, v8
            s_add s4, s4, 1
            s_cmp_lt s4, s5
            s_cbranch_scc1 START
            s_endpgm
        """
        program = parse(source)
        again = parse(serialize(program))
        assert again.instructions == program.instructions
        assert again.labels == program.labels


def _operand_strategy(position, spec):
    regs = st.integers(0, 15)
    if spec.opclass is OpClass.VALU:
        choices = [
            regs.map(vreg),
            regs.map(sreg),
            st.integers(-1024, 0xFFFF).map(Imm),
        ]
    else:
        choices = [regs.map(sreg), st.integers(-1024, 0xFFFF).map(Imm)]
    return st.one_of(*choices)


_ALU_MNEMONICS = sorted(
    name
    for name, spec in OPCODES.items()
    if spec.opclass in (OpClass.VALU, OpClass.SALU) and spec.n_dst == 1
)


@st.composite
def alu_instructions(draw):
    mnemonic = draw(st.sampled_from(_ALU_MNEMONICS))
    spec = OPCODES[mnemonic]
    dst = vreg(draw(st.integers(0, 15))) if mnemonic.startswith("v_") else sreg(
        draw(st.integers(0, 15))
    )
    srcs = tuple(
        draw(_operand_strategy(i, spec)) for i in range(spec.n_src)
    )
    from repro.isa import Instruction

    return Instruction(mnemonic, (dst,), srcs)


@settings(max_examples=150, deadline=None)
@given(st.lists(alu_instructions(), min_size=0, max_size=30))
def test_roundtrip_property(instructions):
    """parse(serialize(p)) reproduces any ALU program exactly."""
    program = Program(list(instructions))
    again = parse(serialize(program))
    assert again.instructions == program.instructions
