"""The interleaving model checker: clean configs explore with zero
findings, every seeded protocol bug is caught by its distinct MC3xx code,
and verdicts are bit-identical across worker counts and execution cores.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis import ExperimentEngine
from repro.mc import (
    SEEDED_BUGS,
    McModel,
    McOptions,
    McUnit,
    clean_reference,
    explore,
    find_races,
    mc_profile_for,
)
from repro.kernels.suite import SUITE
from repro.mechanisms import make_mechanism
from repro.obs.events import EventKind, Tracer
from repro.sim import GPUConfig

MECHANISMS = ["baseline", "live", "ckpt", "csdefer", "ctxback", "combined"]


def _verdict(key, mechanism, options, config=None, iterations=2):
    config = config if config is not None else GPUConfig.small(4)
    return mc_profile_for(key, mechanism, config, options, iterations)


def _codes(verdict):
    return sorted({f["code"] for f in verdict["findings"]})


# -- clean exploration ------------------------------------------------------------


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_clean_exploration_has_no_findings(mechanism):
    """2 warps, one forced preemption round each, every interleaving:
    the protocol holds every MC invariant on every mechanism."""
    verdict = _verdict("va", mechanism, McOptions(warps=2, rounds=1))
    assert verdict["findings"] == [], _codes(verdict)
    assert verdict["ok"] is True
    assert not verdict["truncated"]
    # the space was genuinely explored, not vacuously empty
    assert verdict["explored_states"] > 10
    assert verdict["terminals"] >= 1
    assert verdict["runs"] > 10


def test_clean_multi_round_exploration():
    """Two preemption rounds per warp (signal → evict → resume, twice)."""
    verdict = _verdict("va", "ctxback", McOptions(warps=2, rounds=2))
    assert verdict["findings"] == []
    assert not verdict["truncated"]


@pytest.mark.parametrize("key", ["mm", "km"])
def test_clean_exploration_other_kernels(key):
    verdict = _verdict(key, "ctxback", McOptions(warps=2, rounds=1))
    assert verdict["findings"] == [], _codes(verdict)


# -- seeded protocol bugs ---------------------------------------------------------

_BUG_OPTIONS = McOptions(warps=2, rounds=1, max_states=1500)


@pytest.mark.parametrize("bug", sorted(SEEDED_BUGS))
def test_seeded_bug_caught_by_its_code(bug):
    """Each seeded defect trips exactly its contracted finding code —
    the checker's end-to-end self-test."""
    options = dataclasses.replace(_BUG_OPTIONS, bug=bug)
    verdict = _verdict("va", "ctxback", options, iterations=1)
    codes = _codes(verdict)
    assert SEEDED_BUGS[bug] in codes, (bug, codes)
    assert verdict["ok"] is False


def test_seeded_bug_codes_are_distinct():
    assert len(set(SEEDED_BUGS.values())) == len(SEEDED_BUGS)


def test_unknown_bug_rejected():
    with pytest.raises(ValueError):
        McOptions(bug="not-a-bug")


# -- determinism / equivalence ----------------------------------------------------


def _fresh_exploration(core="reference"):
    config = dataclasses.replace(GPUConfig.small(4), core=core)
    options = McOptions(warps=2, rounds=1)
    launch = SUITE["va"].launch(
        warp_size=config.warp_size, iterations=2, num_warps=options.warps
    )
    prepared = make_mechanism("ctxback").prepare(launch.kernel, config)
    spec = launch.spec()
    reference = clean_reference(prepared, spec, config)

    def factory():
        return McModel(
            prepared, spec, config, options, kernel="va", mechanism="ctxback"
        )

    return explore(factory, reference, options, kernel="va", mechanism="ctxback")


def test_exploration_is_deterministic():
    """Two cache-bypassing explorations agree bit-for-bit."""
    first = _fresh_exploration()
    second = _fresh_exploration()
    assert first.reachable_digest == second.reachable_digest
    assert (first.states, first.terminals, first.runs, first.transitions) == (
        second.states, second.terminals, second.runs, second.transitions
    )
    assert first.findings == second.findings


def test_reference_and_fast_cores_reach_identical_states():
    """The checker only drives the reference stepper, so the explored
    space — and the clean-run oracle — must agree across cores."""
    reference_core = _fresh_exploration(core="reference")
    fast_core = _fresh_exploration(core="fast")
    assert reference_core.reachable_digest == fast_core.reachable_digest
    assert reference_core.findings == fast_core.findings
    assert reference_core.states == fast_core.states


def test_verdicts_identical_across_jobs(monkeypatch, tmp_path):
    """Engine-merged verdicts are bit-identical for --jobs 1 vs N."""
    # engine workers resolve the artifact cache from the environment
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    config = GPUConfig.small(4)
    options = McOptions(warps=2, rounds=1)
    units = [
        McUnit(key="va", mechanism=m, config=config, options=options,
               iterations=2)
        for m in ("ctxback", "ckpt", "baseline")
    ]
    parallel = ExperimentEngine(jobs=2).map(units)
    serial = ExperimentEngine(jobs=1).map(units)
    assert serial == parallel


# -- the happens-before detector --------------------------------------------------


def _access(tracer, cycle, thread, owner, slot, write):
    tracer.emit(
        cycle, EventKind.CTX_ACCESS, thread, owner=owner, slot=slot, write=write
    )


def test_hb_protocol_ordered_accesses_are_race_free():
    """write → EVICT → SIGNAL(other) → foreign write is ordered through
    the controller: no race."""
    tracer = Tracer()
    _access(tracer, 10, 1, 1, 0, True)  # warp 1 saves its slot
    tracer.emit(11, EventKind.EVICT, 1)  # publishes via the controller
    tracer.emit(12, EventKind.SIGNAL, 0)  # controller then signals warp 0
    _access(tracer, 13, 0, 1, 0, True)  # warp 0 touches warp 1's slot
    assert find_races(tracer.events, [0, 1]) == []


def test_hb_unordered_conflicting_accesses_race():
    tracer = Tracer()
    _access(tracer, 10, 1, 1, 0, True)
    _access(tracer, 13, 0, 1, 0, True)  # no protocol edge in between
    races = find_races(tracer.events, [0, 1])
    assert len(races) == 1
    assert races[0]["owner"] == 1
    assert races[0]["threads"] == [0, 1]


def test_hb_read_read_is_not_a_conflict():
    tracer = Tracer()
    _access(tracer, 10, 1, 1, 0, False)
    _access(tracer, 13, 0, 1, 0, False)
    assert find_races(tracer.events, [0, 1]) == []


def test_hb_distinct_slots_do_not_conflict():
    tracer = Tracer()
    _access(tracer, 10, 1, 1, 0, True)
    _access(tracer, 13, 0, 1, 4, True)
    assert find_races(tracer.events, [0, 1]) == []


# -- reporting integration --------------------------------------------------------


def test_verdict_findings_render_and_ratchet(tmp_path):
    """MC verdict JSON is lint-schema shaped: baseline keys load and the
    ratchet accepts previously-recorded findings."""
    import json

    from repro.mc import render_mc_json, verdict_findings
    from repro.verify import diff_against_baseline, load_baseline_keys

    options = dataclasses.replace(_BUG_OPTIONS, bug="drop_resume")
    verdict = _verdict("va", "ctxback", options, iterations=1)
    report = render_mc_json([verdict])
    assert report["summary"]["ok"] is False
    path = tmp_path / "mc_baseline.json"
    path.write_text(json.dumps(report))
    baseline = load_baseline_keys(str(path))
    findings = verdict_findings([verdict])
    assert findings  # MC302 present
    assert diff_against_baseline(findings, baseline) == []
