"""Exec-mask manipulation across preemption.

The exec mask is architectural state that flows through liveness, value
numbering and the generated routines like any register (paper: OSRB's other
main target is "the execution mask").  These tests preempt *inside* a
masked region and verify the mask — old and new values — survives the round
trip.
"""

import numpy as np
import pytest

from repro.isa import Kernel, parse
from repro.mechanisms import make_mechanism
from repro.sim import GPUConfig, LaunchSpec, run_preemption_experiment, run_reference

CONFIG = GPUConfig.small(warp_size=4)

# s6 holds a half-warp mask; the kernel narrows exec, writes under the mask,
# restores exec, then writes the final values.
MASKED = """
    v_lshl v1, v0, 0x2
    v_add  v2, v1, s1
    v_mov  v3, 100
    s_mov  s7, exec          # save the full mask
    s_mov  exec, s6          # narrow to half the lanes
    v_mov  v3, 7             # masked write
    v_mul  v4, v3, 3         # masked compute
    s_mov  exec, s7          # restore
    v_add  v5, v3, v4
    global_store v2, v3, 0
    global_store v2, v5, 0x10
    s_endpgm
"""


@pytest.fixture(scope="module")
def masked_kernel():
    return Kernel(
        "masked", parse(MASKED), vgprs_used=8, sgprs_used=8, noalias=True,
        warps_per_block=1,
    )


@pytest.fixture()
def masked_launch(masked_kernel):
    def setup_memory(memory):
        pass

    def setup_warp(state, index):
        state.vregs[0, :] = np.arange(state.warp_size)
        state.sregs[1] = 0x4000
        state.sregs[6] = 0b0101  # lanes 0 and 2

    return LaunchSpec(
        kernel=masked_kernel, setup_memory=setup_memory, setup_warp=setup_warp,
        num_warps=1,
    )


def test_reference_semantics(masked_launch):
    result = run_reference(masked_launch, CONFIG)
    # lanes 0,2 took the masked path (7); lanes 1,3 kept 100
    v3 = result.memory.load_array(0x4000, 4)
    assert list(v3) == [7, 100, 7, 100]


@pytest.mark.parametrize(
    "mechanism", ["baseline", "live", "ctxback", "csdefer", "combined", "ckpt"]
)
@pytest.mark.parametrize("signal_dyn", range(0, 11))
def test_preempt_anywhere_in_masked_region(masked_launch, mechanism, signal_dyn):
    """Every signal position — including inside the narrowed-exec window —
    round-trips bit-exact, under every mechanism."""
    prepared = make_mechanism(mechanism).prepare(masked_launch.kernel, CONFIG)
    result = run_preemption_experiment(
        masked_launch, prepared, CONFIG, signal_dyn=signal_dyn, resume_gap=64
    )
    assert result.verified, (mechanism, signal_dyn)


def test_exec_values_in_flashback_analysis(masked_kernel):
    """Flashback across the exec-narrowing: the plan must track both the old
    and the new mask values as distinct values."""
    from repro.ctxback import CtxBackConfig, FlashbackAnalyzer

    analyzer = FlashbackAnalyzer(
        masked_kernel, CtxBackConfig(rf_spec=CONFIG.rf_spec)
    )
    # signal right after the masked writes, before the restore
    plan = analyzer.plan_at(7)
    assert plan is not None
    # exec appears in the routines (saved or rebuilt)
    routine_text = "\n".join(
        str(i)
        for i in (
            list(plan.preempt_routine.instructions)
            + list(plan.resume_routine.instructions)
        )
    )
    assert "exec" in routine_text
