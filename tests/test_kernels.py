"""Benchmark suite: resource budgets vs Table I, functional execution."""

import pytest

from repro.isa import RegisterFileSpec, RegKind
from repro.kernels import SUITE, TABLE1, all_keys, benchmark
from repro.sim import GPUConfig, run_reference

VEGA = RegisterFileSpec(warp_size=64)


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(SUITE) == 12
        assert all_keys() == sorted(SUITE)

    def test_table1_rows_complete(self):
        assert set(TABLE1) == set(SUITE)
        for row in TABLE1.values():
            assert row.preempt_us > 0 and row.resume_us > 0

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            benchmark("nope")


@pytest.mark.parametrize("key", sorted(SUITE))
class TestResourceBudgets:
    def test_vector_kb_matches_table1(self, key):
        bench = SUITE[key]
        kernel = bench.build(64)
        allocated_kb = (
            VEGA.allocated_vgprs(kernel.vgprs_used) * VEGA.vgpr_bytes_each / 1024
        )
        # MS is the one entry whose Table I figure (10.5 KB = 42 regs) is not
        # a multiple of the 4-register allocation granule
        tolerance = 0.6 if key == "ms" else 0.01
        assert allocated_kb == pytest.approx(bench.table1.vector_kb, abs=tolerance)

    def test_lds_matches_table1(self, key):
        kernel = SUITE[key].build(64)
        assert kernel.lds_bytes / 1024 == pytest.approx(
            SUITE[key].table1.shared_kb, abs=0.06
        )

    def test_program_within_declared_budget(self, key):
        kernel = SUITE[key].build(64)
        assert kernel.program.max_reg_index(RegKind.VECTOR) < kernel.vgprs_used
        assert kernel.program.max_reg_index(RegKind.SCALAR) < kernel.sgprs_used

    def test_kernel_has_loop(self, key):
        kernel = SUITE[key].build(64)
        assert "LOOP" in kernel.program.labels

    def test_buildable_at_small_warp_sizes(self, key):
        for warp_size in (4, 8, 16):
            kernel = SUITE[key].build(warp_size)
            kernel.program.validate()


@pytest.mark.parametrize("key", sorted(SUITE))
class TestFunctional:
    def test_runs_to_completion_and_writes_output(self, key):
        config = GPUConfig.small(warp_size=8)
        launch = SUITE[key].launch(warp_size=8, iterations=6, num_warps=2)
        result = run_reference(launch.spec(), config)
        assert result.cycles > 0
        from repro.kernels import OUT_BASE

        out = result.memory.load_array(OUT_BASE, 16)
        assert out.any(), "kernel produced no output"

    def test_deterministic(self, key):
        config = GPUConfig.small(warp_size=8)
        launch = SUITE[key].launch(warp_size=8, iterations=6, num_warps=2)
        a = run_reference(launch.spec(), config)
        b = run_reference(launch.spec(), config)
        assert a.memory == b.memory
        assert a.cycles == b.cycles

    def test_iterations_scale_work(self, key):
        config = GPUConfig.small(warp_size=8)
        short = run_reference(
            SUITE[key].launch(warp_size=8, iterations=4, num_warps=1).spec(), config
        )
        long = run_reference(
            SUITE[key].launch(warp_size=8, iterations=8, num_warps=1).spec(), config
        )
        assert long.sm.stats.issued > short.sm.stats.issued


class TestLiveVariety:
    def test_low_pressure_kernels_have_low_floors(self):
        """VA/RELU collapse to a handful of live registers at the loop edge
        (paper: their 'rapid and drastic variety' is why they reduce most)."""
        from repro.compiler import analyze_liveness, build_cfg

        for key in ("va", "relu"):
            kernel = SUITE[key].build(64)
            cfg = build_cfg(kernel.program)
            liveness = analyze_liveness(kernel.program, cfg)
            loop = cfg.block_at(kernel.program.target_index("LOOP"))
            floor = min(
                sum(1 for r in liveness.live_in[p] if r.kind is RegKind.VECTOR)
                for p in loop.positions()
            )
            assert floor <= 6, key

    def test_km_floor_is_high(self):
        """KM's cached centroids keep the floor high (paper: CTXBack decays
        towards LIVE on KM)."""
        from repro.compiler import analyze_liveness, build_cfg

        kernel = SUITE["km"].build(64)
        cfg = build_cfg(kernel.program)
        liveness = analyze_liveness(kernel.program, cfg)
        loop = cfg.block_at(kernel.program.target_index("LOOP"))
        floor = min(
            sum(1 for r in liveness.live_in[p] if r.kind is RegKind.VECTOR)
            for p in loop.positions()
        )
        assert floor >= 16

    def test_hs_context_dominated_by_lds(self):
        from repro.ctxback import baseline_context_bytes, lds_share_bytes

        kernel = SUITE["hs"].build(64)
        lds = lds_share_bytes(kernel)
        assert lds / baseline_context_bytes(kernel, VEGA) > 0.6
