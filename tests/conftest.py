"""Shared fixtures: small configurations, sample programs and kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import Kernel, parse
from repro.sim import GPUConfig, LaunchSpec


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the artifact cache at a per-session temp dir so tests never
    read or write ``~/.cache/repro`` (and never see stale artifacts)."""
    from repro.analysis.cache import configure_cache

    root = tmp_path_factory.mktemp("repro-cache")
    configure_cache(root=root, enabled=True)
    yield
    configure_cache()  # restore env-driven defaults


@pytest.fixture(scope="session")
def small_config() -> GPUConfig:
    """4-lane warps, fast memory: quick functional tests."""
    return GPUConfig.small(warp_size=4)


@pytest.fixture(scope="session")
def loop_kernel() -> Kernel:
    """A small scale-and-store loop kernel used across sim/mechanism tests."""
    src = """
        v_lshl v1, v0, 0x2
        v_add  v2, v1, s0
        v_add  v3, v1, s1
        s_mov  s4, 0
    LOOP:
        global_load v4, v2, 0
        v_mul  v5, v4, 3
        v_add  v5, v5, 7
        global_store v3, v5, 0
        v_add  v2, v2, s3
        v_add  v3, v3, s3
        s_add  s4, s4, 1
        s_cmp_lt s4, s2
        s_cbranch_scc1 LOOP
        s_endpgm
    """
    return Kernel(
        "scale",
        parse(src),
        vgprs_used=8,
        sgprs_used=8,
        noalias=True,
        warps_per_block=2,
    )


LOOP_ITERATIONS = 12


@pytest.fixture()
def loop_launch(loop_kernel) -> LaunchSpec:
    def setup_memory(memory):
        memory.store_array(
            0x1000, np.arange(512, dtype=np.uint32) * 13 + 5
        )

    def setup_warp(state, index):
        span = LOOP_ITERATIONS * state.warp_size * 4
        state.sregs[0] = 0x1000 + index * span
        state.sregs[1] = 0x8000 + index * span
        state.sregs[2] = LOOP_ITERATIONS
        state.sregs[3] = state.warp_size * 4
        state.vregs[0, :] = np.arange(state.warp_size)

    return LaunchSpec(
        kernel=loop_kernel, setup_memory=setup_memory, setup_warp=setup_warp
    )


# Straight-line programs reproducing the paper's worked examples.  Stores at
# the end keep the interesting registers live at the signal position.

PAPER_FIG3 = """
    v_xor v1, v0, v2
    v_mul v3, v1, v2
    v_add v0, v0, v3
    v_mov v1, 0xF
    global_store v4, v0, 0
    global_store v4, v1, 4
    global_store v4, v2, 8
    global_store v4, v3, 12
    s_endpgm
"""

PAPER_FIG4 = """
    v_mul v2, v1, 0xE
    v_xor v3, v0, v2
    v_add v0, v0, v2
    v_mov v2, 0xFF
    global_store v5, v0, 0
    global_store v5, v2, 4
    global_store v5, v3, 8
    s_endpgm
"""

PAPER_FIG6 = """
    v_xor v3, v0, 0x1
    v_mul v1, v2, 0x1
    v_add v0, v0, v1
    v_mov v1, 0x8
    v_add v2, v2, v1
    global_store v5, v0, 0
    global_store v5, v1, 4
    global_store v5, v2, 8
    global_store v5, v3, 12
    s_endpgm
"""


def paper_kernel(src: str, name: str) -> Kernel:
    return Kernel(name, parse(src), vgprs_used=8, sgprs_used=16, noalias=True)


@pytest.fixture(scope="session")
def fig3_kernel():
    return paper_kernel(PAPER_FIG3, "fig3")


@pytest.fixture(scope="session")
def fig4_kernel():
    return paper_kernel(PAPER_FIG4, "fig4")


@pytest.fixture(scope="session")
def fig6_kernel():
    return paper_kernel(PAPER_FIG6, "fig6")
