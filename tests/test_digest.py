"""Canonical state digests (:mod:`repro.sim.digest`): determinism,
sensitivity, the timing-free architectural projection the model checker
prunes on, and the digest-based chaos oracle's stability across cores
and worker counts."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.sim.digest import arch_digest, memory_digest, state_digest
from repro.sim.gpu import run_reference
from repro.sim.memory import TrackedMemory


@pytest.fixture()
def twin_runs(loop_launch, small_config):
    """Two independent, identical reference runs of the loop kernel."""
    return (
        run_reference(loop_launch, small_config),
        run_reference(loop_launch, small_config),
    )


def test_state_digest_deterministic(twin_runs):
    first, second = twin_runs
    assert state_digest(first.sm) == state_digest(second.sm)


def test_state_digest_sees_register_mutation(twin_runs):
    first, second = twin_runs
    second.sm.warps[0].state.vregs[1, 0] ^= 1
    assert state_digest(first.sm) != state_digest(second.sm)
    assert state_digest(first.sm, timing=False) != state_digest(
        second.sm, timing=False
    )


def test_state_digest_ignores_ctx_buffer_insertion_order(twin_runs):
    """Dict representation noise never leaks into the hash."""
    first, second = twin_runs
    payload = np.arange(4, dtype=np.uint32)
    first.sm.warps[0].state.ctx_buffer[1] = payload
    first.sm.warps[0].state.ctx_buffer[2] = payload * 3
    second.sm.warps[0].state.ctx_buffer[2] = payload * 3
    second.sm.warps[0].state.ctx_buffer[1] = payload
    assert state_digest(first.sm) == state_digest(second.sm)


def test_timing_free_digest_merges_cycle_skew(twin_runs):
    """The architectural projection identifies states that differ only in
    timing — the convergence the model checker's DFS prunes on."""
    first, second = twin_runs
    second.sm.cycle += 100
    assert state_digest(first.sm) != state_digest(second.sm)
    assert state_digest(first.sm, timing=False) == state_digest(
        second.sm, timing=False
    )


def test_extra_bytes_fork_the_digest(twin_runs):
    first, _ = twin_runs
    assert state_digest(first.sm, extra=b"a") != state_digest(
        first.sm, extra=b"b"
    )


def test_memory_digest_tracks_content_not_write_history():
    """A word written and then zeroed digests like one never touched —
    the property that makes TrackedMemory digests canonical."""
    touched, untouched = TrackedMemory(), TrackedMemory()
    touched.store_word(0x100, 7)
    touched.store_word(0x100, 0)
    assert memory_digest(touched) == memory_digest(untouched)
    touched.store_word(0x100, 7)
    assert memory_digest(touched) != memory_digest(untouched)


def test_arch_digest_identical_across_cores(loop_launch, small_config):
    cores = {}
    for core in ("reference", "fast"):
        config = dataclasses.replace(small_config, core=core)
        result = run_reference(loop_launch, config)
        wids = [w.warp_id for w in result.sm.warps]
        cores[core] = arch_digest(result.sm, wids)
    assert cores["reference"] == cores["fast"]


def test_arch_digest_lds_only_skips_registers(twin_runs):
    """A degraded warp in ``lds_only`` is held to LDS equality only: its
    register file may legitimately diverge from the clean run."""
    first, second = twin_runs
    wids = [w.warp_id for w in first.sm.warps]
    victim = wids[0]
    second.sm.warps[0].state.sregs[4] ^= 1
    assert arch_digest(first.sm, wids) != arch_digest(second.sm, wids)
    assert arch_digest(first.sm, wids, lds_only=[victim]) == arch_digest(
        second.sm, wids, lds_only=[victim]
    )


def test_chaos_verdict_stable_across_jobs(monkeypatch, tmp_path):
    """The digest-based chaos oracle merges bit-identically for
    --jobs 1 vs N (regression for the canonical-digest refactor)."""
    from repro.analysis import ExperimentEngine
    from repro.faults.chaos import ChaosUnit
    from repro.sim import GPUConfig

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    config = GPUConfig.small(4)
    units = [
        ChaosUnit(
            key="va", mechanism="ctxback", scenario=name, seed=7,
            config=config, resume_gap=300,
        )
        for name in ("ctx-bitflip", "signal-drop")
    ]
    serial = ExperimentEngine(jobs=1).map(units)
    parallel = ExperimentEngine(jobs=2).map(units)
    assert serial == parallel
    assert all(v["ok"] for v in serial)
