"""Observability layer: tracer, breakdowns, exporters, engine hooks."""

import dataclasses
import json
import subprocess
import sys

import pytest

from repro.kernels import SUITE
from repro.mechanisms import make_mechanism
from repro.obs import (
    EventKind,
    Tracer,
    aggregate_breakdowns,
    build_breakdowns,
    make_tracer,
    render_trace_text,
    resolved_detail,
    to_chrome,
    to_jsonl,
    tracing_enabled,
)
from repro.sim import GPUConfig, run_preemption_experiment, run_reference

SMALL = GPUConfig.small(warp_size=8)
TRACED = dataclasses.replace(SMALL, trace_events=True)

#: one mechanism per preemption strategy (switch / drop / drain) plus a
#: second routine-pair mechanism — the breakdown invariant must hold for all
MECHANISMS = ("ctxback", "live", "ckpt", "drain")


def run_experiment(mechanism: str, config: GPUConfig, verify: bool = False):
    launch = SUITE["va"].launch(warp_size=8, iterations=6, num_warps=2)
    prepared = make_mechanism(mechanism).prepare(launch.kernel, config)
    return run_preemption_experiment(
        launch.spec(), prepared, config, signal_dyn=30, resume_gap=200,
        verify=verify,
    )


class TestEnablement:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not tracing_enabled(SMALL)
        assert make_tracer(SMALL) is None
        result = run_experiment("ctxback", SMALL)
        assert result.trace is None
        assert result.breakdowns == {}

    def test_config_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert tracing_enabled(TRACED)
        tracer = make_tracer(TRACED, "ctxback")
        assert isinstance(tracer, Tracer)
        assert tracer.mechanism == "ctxback"
        assert not tracer.full

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracing_enabled(SMALL)
        assert resolved_detail(SMALL) == "routine"

    def test_env_raises_detail(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "issue")
        assert tracing_enabled(SMALL)
        assert resolved_detail(TRACED) == "issue"
        assert make_tracer(SMALL).full


class TestDeterminism:
    def test_identical_runs_identical_streams(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        first = run_experiment("ctxback", TRACED)
        second = run_experiment("ctxback", TRACED)
        assert len(first.trace.events) > 0
        assert to_jsonl(first.trace) == to_jsonl(second.trace)

    def test_sorted_events_total_order(self):
        result = run_experiment("ctxback", TRACED)
        ordered = result.trace.sorted_events()
        keys = [(e.cycle, e.seq) for e in ordered]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)  # no duplicate positions

    def test_lifecycle_events_present(self):
        result = run_experiment("ctxback", TRACED)
        kinds = {e.kind for e in result.trace.events}
        assert {
            EventKind.SIGNAL, EventKind.ROUTINE_START, EventKind.ROUTINE_END,
            EventKind.EVICT, EventKind.RESUME_START, EventKind.RESUME_END,
        } <= kinds


class TestObserverEffect:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_tracing_does_not_change_cycles(self, mechanism):
        untraced = run_experiment(mechanism, SMALL)
        traced = run_experiment(mechanism, TRACED)
        assert traced.total_cycles == untraced.total_cycles
        for a, b in zip(untraced.measurements, traced.measurements):
            assert a.latency_cycles == b.latency_cycles
            assert a.resume_cycles == b.resume_cycles

    def test_reference_cycles_unchanged(self):
        launch = SUITE["va"].launch(warp_size=8, iterations=6, num_warps=2)
        plain = run_reference(launch.spec(), SMALL)
        traced = run_reference(launch.spec(), TRACED)
        assert plain.cycles == traced.cycles
        assert plain.trace is None
        assert traced.trace is not None


class TestBreakdowns:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_phase_sums_equal_measured_totals(self, mechanism):
        result = run_experiment(mechanism, TRACED)
        assert result.measurements
        assert set(result.breakdowns) == {
            m.warp_id for m in result.measurements
        }
        for m in result.measurements:
            breakdown = result.breakdown_for(m.warp_id)
            assert breakdown.total == m.latency_cycles
            if m.resume_cycles is not None:
                assert breakdown.resume_total == m.resume_cycles

    def test_rebuild_matches_attached(self):
        result = run_experiment("ctxback", TRACED)
        rebuilt = build_breakdowns(result.trace, result.measurements)
        assert {
            w: b.as_dict() for w, b in rebuilt.items()
        } == {w: b.as_dict() for w, b in result.breakdowns.items()}

    def test_aggregate_shape(self):
        result = run_experiment("ctxback", TRACED)
        aggregate = aggregate_breakdowns(result.breakdowns)
        assert aggregate["warps"] == len(result.breakdowns)
        assert sum(aggregate["preempt_phase_cycles"].values()) == sum(
            m.latency_cycles for m in result.measurements
        )


class TestChromeExport:
    def test_schema_valid_and_round_trips(self):
        result = run_experiment("ctxback", TRACED)
        chrome = to_chrome(result.trace, TRACED, result)
        parsed = json.loads(json.dumps(chrome))
        assert isinstance(parsed["traceEvents"], list)
        assert parsed["otherData"]["total_cycles"] == result.total_cycles
        for record in parsed["traceEvents"]:
            assert record["ph"] in ("M", "X", "i")
            assert "pid" in record and "tid" in record and "name" in record
            if record["ph"] == "X":
                assert record["dur"] >= 0 and record["ts"] >= 0
            if record["ph"] == "i":
                assert record["s"] == "t"

    def test_issue_detail_labels_routine_steps(self):
        config = dataclasses.replace(TRACED, trace_detail="issue")
        result = run_experiment("ctxback", config)
        chrome = to_chrome(result.trace, config, result)
        steps = {
            record["args"]["step"]
            for record in chrome["traceEvents"]
            if record.get("cat", "").startswith("issue.")
            and "step" in record.get("args", {})
        }
        assert "save" in steps and "reload" in steps

    def test_jsonl_round_trips(self):
        result = run_experiment("ckpt", TRACED)
        lines = to_jsonl(result.trace).splitlines()
        assert len(lines) == len(result.trace.events)
        for line in lines:
            record = json.loads(line)
            assert {"seq", "cycle", "kind", "warp"} <= set(record)

    def test_text_timeline(self):
        result = run_experiment("ctxback", TRACED)
        text = render_trace_text(
            result.trace, TRACED, result, breakdowns=result.breakdowns
        )
        assert "latency breakdown (cycles):" in text
        assert "signal" in text and "evict" in text
        # deterministic: rendering twice is byte-identical
        assert text == render_trace_text(
            result.trace, TRACED, result, breakdowns=result.breakdowns
        )


class TestEngineIntegration:
    def test_traced_unit_profile_and_report(self):
        from repro.analysis.engine import ExperimentEngine, ExperimentUnit

        unit = ExperimentUnit(
            key="va", mechanism="ctxback", config=SMALL, signal_dyn=30,
            resume_gap=200, iterations=6, trace=True,
        )
        engine = ExperimentEngine(1)
        profile = engine.map([unit])[0]
        assert profile["breakdown"]["warps"] > 0
        assert profile["events"] > 0
        trace_report = engine.report.as_dict()["trace"]
        assert trace_report["traced_units"] == 1
        assert trace_report["warps"] == profile["breakdown"]["warps"]
        assert (
            trace_report["preempt_phase_cycles"]
            == profile["breakdown"]["preempt_phase_cycles"]
        )

    def test_traced_and_untraced_profiles_do_not_alias(self):
        from repro.analysis.engine import experiment_profile_for

        untraced = experiment_profile_for(
            "va", "ctxback", SMALL, 6, 30, 200, False
        )
        traced = experiment_profile_for(
            "va", "ctxback", SMALL, 6, 30, 200, False, True
        )
        assert "breakdown" not in untraced
        assert traced["breakdown"]["warps"] > 0
        # the observer-effect guard, through the cache layer
        assert traced["latency"] == untraced["latency"]

    def test_weights_cached_once(self):
        from repro.analysis import get_cache
        from repro.analysis.metrics import dynamic_pc_weights

        launch = SUITE["va"].launch(warp_size=8, iterations=7)
        # warm the fast core's compiled-block artifact so the delta below
        # isolates the weights entry (the reference run inside the factory
        # compiles the kernel's basic blocks through the same cache)
        from repro.sim.blocks import plan_for

        plan_for(launch.spec().kernel.program, SMALL, use_cache=True)
        stats = get_cache().stats
        before = stats.snapshot()
        first = dynamic_pc_weights(launch, SMALL)
        second = dynamic_pc_weights(launch, SMALL)
        delta = stats.delta(before)
        assert first == second
        assert delta.misses == 1 and delta.stores == 1
        assert delta.hits >= 1


class TestTraceCli:
    def run_cli(self, *args, tmp_path=None):
        return subprocess.run(
            [sys.executable, "-m", "repro", "trace", *args],
            capture_output=True, text=True, timeout=600,
        )

    def test_chrome_output_is_loadable_json(self, tmp_path):
        out = tmp_path / "trace.json"
        result = self.run_cli(
            "va", "--mechanism", "ctxback", "--iterations", "6",
            "--format", "chrome", "--output", str(out),
        )
        assert result.returncode == 0, result.stderr
        with open(out) as handle:
            chrome = json.load(handle)
        assert chrome["traceEvents"]
        assert chrome["otherData"]["mechanism"] == "ctxback"

    def test_text_output_has_breakdown(self):
        result = self.run_cli(
            "va", "--mechanism", "ckpt", "--iterations", "6", "--no-verify"
        )
        assert result.returncode == 0, result.stderr
        assert "latency breakdown (cycles):" in result.stdout
        assert "[drop]" in result.stdout
