"""Regression tests for the falsy-zero recovery-accounting fix.

``WarpMeasurement.recovery_cycles`` is Optional: ``None`` means *no
recovery data*, and a genuine ``0`` is a legitimate zero-cost fallback.
The old finalization (`sim/gpu.py`) used truthiness —
``if measurement.degraded and not measurement.recovery_cycles:`` — which
treated a real 0 as absent and then coerced ``resume_cycles or 0``,
silently conflating "no data" with "zero cycles".  These tests pin the
``is None`` semantics at every fixed site.
"""

from __future__ import annotations

import types

import pytest

from repro.faults.errors import SimulationHangError
from repro.sim import build_launch
from repro.sim.gpu import finalize_measurements
from repro.sim.preemption import WarpMeasurement


def _warp(warp_id, resume_start=None, resume_done=None):
    return types.SimpleNamespace(
        warp_id=warp_id,
        resume_start_cycle=resume_start,
        resume_done_cycle=resume_done,
    )


def _measurement(**overrides):
    base = dict(warp_id=0, signal_pc=3, signal_cycle=100, latency_cycles=40)
    base.update(overrides)
    return WarpMeasurement(**base)


def _finalize(measurement, warp, cycle=1000):
    sm = types.SimpleNamespace(cycle=cycle)
    controller = types.SimpleNamespace(
        measurements={warp.warp_id: measurement}
    )
    finalize_measurements(sm, controller, [warp])
    return measurement


class TestDegradedRecoveryFinalization:
    def test_legitimate_zero_recovery_is_preserved(self):
        # a degraded save whose stores drained within the same cycle: the
        # fallback legitimately cost 0 extra cycles.  The old truthiness
        # check replaced that 0 with the (unrelated) resume cost.
        m = _measurement(degraded=True, recovery_cycles=0)
        warp = _warp(0, resume_start=200, resume_done=260)
        _finalize(m, warp)
        assert m.resume_cycles == 60
        assert m.recovery_cycles == 0  # not overwritten with 60

    def test_absent_recovery_stays_none_without_resume_data(self):
        # degraded but never resumed (e.g. the run ended first): there is
        # no recovery figure, and fabricating a 0 would skew means
        m = _measurement(degraded=True)
        warp = _warp(1)
        _finalize(m, warp)
        assert m.resume_cycles is None
        assert m.recovery_cycles is None

    def test_restart_recovery_filled_from_resume(self):
        # CKPT restart-from-zero: the whole re-execution back to the
        # signal point is recovery work, taken from the watch timestamps
        m = _measurement(degraded=True)
        warp = _warp(2, resume_start=500, resume_done=None)
        _finalize(m, warp, cycle=900)
        assert m.resume_cycles == 400
        assert m.recovery_cycles == 400

    def test_nonzero_recovery_not_double_counted(self):
        # degrade_save already charged the fallback store; the restart
        # fill must leave it alone
        m = _measurement(degraded=True, recovery_cycles=35)
        warp = _warp(3, resume_start=500, resume_done=520)
        _finalize(m, warp)
        assert m.resume_cycles == 20
        assert m.recovery_cycles == 35

    def test_clean_warp_untouched(self):
        m = _measurement(resume_cycles=17)
        warp = _warp(4, resume_start=200, resume_done=260)
        _finalize(m, warp)
        assert m.resume_cycles == 17
        assert m.recovery_cycles is None


@pytest.mark.parametrize(
    ("degraded", "recovery", "resume_start", "resume_done", "expected"),
    [
        # (site: gpu.finalize_measurements) legit 0 preserved
        (True, 0, 200, 260, 0),
        # (site: gpu.finalize_measurements) absent stays None, not `or 0`
        (True, None, None, None, None),
        # restart fill still works when data exists
        (True, None, 200, 300, 100),
        # non-degraded never gains recovery data
        (False, None, 200, 300, None),
    ],
)
def test_fixed_sites_parametrized(
    degraded, recovery, resume_start, resume_done, expected
):
    m = _measurement(degraded=degraded, recovery_cycles=recovery)
    warp = _warp(0, resume_start=resume_start, resume_done=resume_done)
    _finalize(m, warp)
    assert m.recovery_cycles == expected if expected is not None else (
        m.recovery_cycles is None
    )


def test_run_max_cycles_zero_trips_watchdog(loop_launch, small_config):
    # (site: sm.run) `max_cycles or config.max_cycles` silently replaced
    # an explicit 0 with the config default; `is None` honours it
    sm, _, _ = build_launch(loop_launch, small_config)
    with pytest.raises(SimulationHangError):
        sm.run(max_cycles=0)


def test_recovery_sum_skips_absent_data(loop_launch, small_config):
    # the engine/chaos consumers sum recovery_cycles with an `is None`
    # filter; mixing None and 0 must neither raise nor skew the sum
    measurements = [
        _measurement(warp_id=0, degraded=True, recovery_cycles=0),
        _measurement(warp_id=1, degraded=True, recovery_cycles=None),
        _measurement(warp_id=2, degraded=True, recovery_cycles=25),
    ]
    total = sum(
        m.recovery_cycles
        for m in measurements
        if m.recovery_cycles is not None
    )
    assert total == 25
