"""Instruction construction, implicit effects, programs and kernels."""

import pytest

from repro.isa import (
    EXEC,
    Imm,
    Instruction,
    Kernel,
    Label,
    Program,
    SCC,
    inst,
    parse,
    sreg,
    vreg,
)


class TestInstruction:
    def test_inst_helper_splits_by_arity(self):
        i = inst("v_add", vreg(1), vreg(2), vreg(3))
        assert i.dsts == (vreg(1),)
        assert i.srcs == (vreg(2), vreg(3))

    def test_int_promotes_to_imm(self):
        i = inst("v_add", vreg(1), vreg(2), 7)
        assert i.srcs[1] == Imm(7)

    def test_str_promotes_to_label(self):
        i = inst("s_branch", "LOOP")
        assert i.srcs[0] == Label("LOOP")
        assert i.branch_target == "LOOP"

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            inst("v_add", vreg(1), vreg(2))

    def test_non_register_dst_rejected(self):
        with pytest.raises(TypeError):
            Instruction("v_add", (Imm(1),), (vreg(2), vreg(3)))  # type: ignore

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(KeyError):
            inst("v_frobnicate", vreg(0))

    def test_uses_include_implicit_exec(self):
        i = inst("v_add", vreg(1), vreg(2), 3)
        assert EXEC in i.uses()
        assert vreg(2) in i.uses()

    def test_scalar_uses_exclude_exec(self):
        i = inst("s_add", sreg(1), sreg(2), 3)
        assert EXEC not in i.uses()

    def test_compare_defs_scc(self):
        i = inst("s_cmp_lt", sreg(1), sreg(2))
        assert SCC in i.defs()
        assert i.dsts == ()

    def test_cbranch_uses_scc(self):
        program = parse("LOOP:\n s_cbranch_scc1 LOOP")
        assert SCC in program.instructions[0].uses()

    def test_src_regs_filters_immediates(self):
        i = inst("v_mad", vreg(1), vreg(2), 3, vreg(4))
        assert i.src_regs == (vreg(2), vreg(4))

    def test_str_rendering(self):
        assert str(inst("v_add", vreg(1), vreg(2), 0x10)) == "v_add v1, v2, 0x10"
        assert str(inst("s_endpgm")) == "s_endpgm"


class TestProgram:
    def test_labels_and_targets(self):
        program = Program()
        program.add_label("TOP")
        program.append(inst("s_nop"))
        assert program.target_index("TOP") == 0
        assert program.labels_at(0) == ["TOP"]

    def test_duplicate_label_rejected(self):
        program = Program()
        program.add_label("A")
        with pytest.raises(ValueError):
            program.add_label("A")

    def test_undefined_target_raises(self):
        program = Program()
        with pytest.raises(KeyError):
            program.target_index("NOPE")

    def test_validate_catches_dangling_branch(self):
        program = Program([inst("s_branch", "GONE")])
        with pytest.raises(ValueError, match="GONE"):
            program.validate()

    def test_validate_catches_out_of_range_label(self):
        program = Program([inst("s_nop")], {"X": 5})
        with pytest.raises(ValueError):
            program.validate()

    def test_used_registers(self):
        program = parse("v_add v1, v2, s3")
        used = program.used_registers()
        assert {vreg(1), vreg(2), sreg(3), EXEC} <= used

    def test_copy_is_independent(self):
        program = parse("s_nop")
        clone = program.copy()
        clone.append(inst("s_nop"))
        assert len(program) == 1 and len(clone) == 2


class TestKernel:
    def test_kernel_checks_register_budget(self):
        program = parse("v_add v9, v1, v2\ns_endpgm")
        with pytest.raises(ValueError, match="v9"):
            Kernel("k", program, vgprs_used=8, sgprs_used=4)

    def test_kernel_checks_scalar_budget(self):
        program = parse("s_add s9, s1, s2\ns_endpgm")
        with pytest.raises(ValueError, match="s9"):
            Kernel("k", program, vgprs_used=4, sgprs_used=8)

    def test_display_name_prefers_abbrev(self):
        program = parse("s_endpgm")
        k = Kernel("long_name", program, 1, 1, abbrev="LN")
        assert k.display_name == "LN"
        assert Kernel("plain", program, 1, 1).display_name == "plain"
