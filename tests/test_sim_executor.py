"""Functional semantics of every opcode class."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import EXEC, SCC, Imm, inst, parse, sreg, vreg
from repro.isa.instruction import Program
from repro.sim import DeviceMemory, Executor, LDSBlock, WarpState

WARP = 4


def make_warp(**kwargs):
    return WarpState(num_vregs=16, num_sregs=16, warp_size=WARP, **kwargs)


def run_one(instruction, warp=None, memory=None, lds=None):
    warp = warp or make_warp()
    memory = memory or DeviceMemory(1 << 16)
    Executor(memory, lds).execute(Program([instruction]), warp, instruction)
    return warp, memory


class TestIntegerAlu:
    def test_add_wraps(self):
        warp = make_warp()
        warp.vregs[1, :] = 0xFFFFFFFF
        warp.vregs[2, :] = 2
        run_one(inst("v_add", vreg(0), vreg(1), vreg(2)), warp)
        assert (warp.vregs[0] == 1).all()

    def test_sub_wraps(self):
        warp = make_warp()
        warp.vregs[1, :] = 1
        run_one(inst("v_sub", vreg(0), vreg(1), 3), warp)
        assert (warp.vregs[0] == 0xFFFFFFFE).all()

    def test_mul_low_bits(self):
        warp = make_warp()
        warp.vregs[1, :] = 0x10001
        run_one(inst("v_mul", vreg(0), vreg(1), vreg(1)), warp)
        assert (warp.vregs[0] == (0x10001 * 0x10001) & 0xFFFFFFFF).all()

    def test_mulhi(self):
        warp = make_warp()
        warp.vregs[1, :] = 0x80000000
        run_one(inst("v_mulhi", vreg(0), vreg(1), 4), warp)
        assert (warp.vregs[0] == 2).all()

    def test_mad(self):
        warp = make_warp()
        warp.vregs[1, :] = 3
        warp.vregs[2, :] = 5
        warp.vregs[3, :] = 7
        run_one(inst("v_mad", vreg(0), vreg(1), vreg(2), vreg(3)), warp)
        assert (warp.vregs[0] == 22).all()

    def test_shifts_mask_amount(self):
        warp = make_warp()
        warp.vregs[1, :] = 1
        run_one(inst("v_lshl", vreg(0), vreg(1), 33), warp)  # 33 & 31 == 1
        assert (warp.vregs[0] == 2).all()

    def test_not(self):
        warp = make_warp()
        warp.vregs[1, :] = 0x0F0F0F0F
        run_one(inst("v_not", vreg(0), vreg(1)), warp)
        assert (warp.vregs[0] == 0xF0F0F0F0).all()

    def test_scalar_broadcast_operand(self):
        warp = make_warp()
        warp.sregs[2] = 100
        warp.vregs[1, :] = np.arange(WARP)
        run_one(inst("v_add", vreg(0), vreg(1), sreg(2)), warp)
        assert list(warp.vregs[0]) == [100, 101, 102, 103]

    @given(
        a=st.integers(0, 0xFFFFFFFF),
        b=st.integers(0, 0xFFFFFFFF),
        base=st.sampled_from(["add", "sub", "mul", "xor", "and", "or", "min", "max"]),
    )
    @settings(max_examples=200, deadline=None)
    def test_scalar_matches_python_model(self, a, b, base):
        import operator

        models = {
            "add": lambda x, y: (x + y) & 0xFFFFFFFF,
            "sub": lambda x, y: (x - y) & 0xFFFFFFFF,
            "mul": lambda x, y: (x * y) & 0xFFFFFFFF,
            "xor": operator.xor,
            "and": operator.and_,
            "or": operator.or_,
            "min": min,
            "max": max,
        }
        warp = make_warp()
        warp.sregs[1], warp.sregs[2] = a, b
        run_one(inst(f"s_{base}", sreg(0), sreg(1), sreg(2)), warp)
        assert warp.sregs[0] == models[base](a, b)


class TestFloatAlu:
    def test_addf(self):
        warp = make_warp()
        warp.vregs[1, :] = np.float32(1.5).view(np.uint32)
        warp.vregs[2, :] = np.float32(2.25).view(np.uint32)
        run_one(inst("v_addf", vreg(0), vreg(1), vreg(2)), warp)
        assert (warp.vregs[0].view(np.float32) == 3.75).all()

    def test_madf(self):
        warp = make_warp()
        for index, value in ((1, 2.0), (2, 3.0), (3, 0.5)):
            warp.vregs[index, :] = np.float32(value).view(np.uint32)
        run_one(inst("v_madf", vreg(0), vreg(1), vreg(2), vreg(3)), warp)
        assert (warp.vregs[0].view(np.float32) == 6.5).all()

    def test_maxf_with_zero_imm(self):
        warp = make_warp()
        warp.vregs[1, :] = np.float32(-2.0).view(np.uint32)
        run_one(inst("v_maxf", vreg(0), vreg(1), 0), warp)
        assert (warp.vregs[0].view(np.float32) == 0.0).all()


class TestExecMask:
    def test_masked_lanes_unchanged(self):
        warp = make_warp()
        warp.vregs[0, :] = 99
        warp.vregs[1, :] = 1
        warp.exec_mask[:] = [True, False, True, False]
        run_one(inst("v_mov", vreg(0), vreg(1)), warp)
        assert list(warp.vregs[0]) == [1, 99, 1, 99]

    def test_exec_roundtrip_as_scalar(self):
        warp = make_warp()
        warp.exec_mask[:] = [True, False, True, True]
        bits = warp.get_scalar(EXEC)
        assert bits == 0b1101
        warp.set_scalar(EXEC, 0b0110)
        assert list(warp.exec_mask) == [False, True, True, False]

    def test_store_respects_exec(self):
        warp = make_warp()
        warp.vregs[1, :] = [0, 4, 8, 12]
        warp.vregs[2, :] = 7
        warp.exec_mask[:] = [True, False, False, True]
        _, memory = run_one(inst("global_store", vreg(1), vreg(2), 0), warp)
        assert memory.load_word(0) == 7
        assert memory.load_word(4) == 0
        assert memory.load_word(12) == 7


class TestControlFlow:
    def test_cmp_sets_scc(self):
        warp = make_warp()
        warp.sregs[1], warp.sregs[2] = 3, 5
        run_one(inst("s_cmp_lt", sreg(1), sreg(2)), warp)
        assert warp.scc == 1
        run_one(inst("s_cmp_ge", sreg(1), sreg(2)), warp)
        assert warp.scc == 0

    def test_branch_taken_and_not(self):
        program = parse("LOOP:\n s_nop\n s_cbranch_scc1 LOOP\n s_endpgm")
        warp = make_warp()
        executor = Executor(DeviceMemory(1 << 12))
        warp.pc = 1
        warp.scc = 1
        executor.execute(program, warp, program.instructions[1])
        assert warp.pc == 0
        warp.pc = 1
        warp.scc = 0
        executor.execute(program, warp, program.instructions[1])
        assert warp.pc == 2

    def test_endpgm_jumps_past_end(self):
        program = parse("s_endpgm\ns_nop")
        warp = make_warp()
        Executor(DeviceMemory(1 << 12)).execute(
            program, warp, program.instructions[0]
        )
        assert warp.pc == 2


class TestMemoryOps:
    def test_gather_load(self):
        memory = DeviceMemory(1 << 12)
        memory.store_array(0x100, np.array([5, 6, 7, 8], dtype=np.uint32))
        warp = make_warp()
        warp.vregs[1, :] = [0x100, 0x104, 0x108, 0x10C]
        run_one(inst("global_load", vreg(0), vreg(1), 0), warp, memory)
        assert list(warp.vregs[0]) == [5, 6, 7, 8]

    def test_load_offset(self):
        memory = DeviceMemory(1 << 12)
        memory.store_word(0x110, 42)
        warp = make_warp()
        warp.vregs[1, :] = 0x100
        run_one(inst("global_load", vreg(0), vreg(1), 0x10), warp, memory)
        assert (warp.vregs[0] == 42).all()

    def test_s_load(self):
        memory = DeviceMemory(1 << 12)
        memory.store_word(0x80, 77)
        warp = make_warp()
        warp.sregs[2] = 0x80
        run_one(inst("s_load", sreg(1), sreg(2), 0), warp, memory)
        assert warp.sregs[1] == 77

    def test_lds_roundtrip(self):
        lds = LDSBlock(64)
        warp = make_warp()
        warp.vregs[1, :] = [0, 4, 8, 12]
        warp.vregs[2, :] = [10, 11, 12, 13]
        run_one(inst("lds_write", vreg(1), vreg(2), 0), warp, lds=lds)
        run_one(inst("lds_read", vreg(3), vreg(1), 0), warp, lds=lds)
        assert list(warp.vregs[3]) == [10, 11, 12, 13]

    def test_lds_without_block_raises(self):
        warp = make_warp()
        with pytest.raises(Exception, match="LDS"):
            run_one(inst("lds_read", vreg(0), vreg(1), 0), warp)


class TestContextOps:
    def test_vector_save_restore_ignores_exec(self):
        warp = make_warp()
        warp.vregs[1, :] = [1, 2, 3, 4]
        warp.exec_mask[:] = [True, False, False, False]
        run_one(inst("ctx_store_v", vreg(1), 0), warp)
        warp.vregs[1, :] = 0
        run_one(inst("ctx_load_v", vreg(1), 0), warp)
        assert list(warp.vregs[1]) == [1, 2, 3, 4]

    def test_scalar_slot_broadcasts_into_vector(self):
        warp = make_warp()
        warp.sregs[3] = 55
        run_one(inst("ctx_store_s", sreg(3), 0x20), warp)
        run_one(inst("ctx_load_v", vreg(2), 0x20), warp)
        assert (warp.vregs[2] == 55).all()

    def test_exec_and_scc_slots(self):
        warp = make_warp()
        warp.exec_mask[:] = [False, True, False, True]
        warp.scc = 1
        run_one(inst("ctx_store_s", EXEC, 0), warp)
        run_one(inst("ctx_store_s", SCC, 8), warp)
        warp.exec_mask[:] = True
        warp.scc = 0
        run_one(inst("ctx_load_s", EXEC, 0), warp)
        run_one(inst("ctx_load_s", SCC, 8), warp)
        assert list(warp.exec_mask) == [False, True, False, True]
        assert warp.scc == 1

    def test_lds_snapshot_roundtrip(self):
        lds = LDSBlock(32)
        lds.store(0, 123)
        warp = make_warp()
        run_one(inst("ctx_store_lds", 32), warp, lds=lds)
        lds.store(0, 0)
        run_one(inst("ctx_load_lds", 32), warp, lds=lds)
        assert lds.load(0) == 123

    def test_ctx_traffic_flags(self):
        warp = make_warp()
        memory = DeviceMemory(1 << 12)
        instruction = inst("ctx_store_v", vreg(1), 0)
        traffic = Executor(memory).execute(
            Program([instruction]), warp, instruction
        )
        assert traffic.is_ctx and traffic.nbytes == 4 * WARP
