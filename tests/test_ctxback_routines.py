"""Routine generation: structure, symbolic validation, degrade path."""

import pytest

from repro.compiler import analyze_liveness, build_cfg, number_region
from repro.ctxback import (
    CtxBackConfig,
    FlashbackAnalyzer,
    GenerationFailure,
    Resolver,
    SignalSite,
    generate_routines,
)
from repro.isa import Kernel, RegisterFileSpec, ReversibilityModel, parse

SPEC = RegisterFileSpec(warp_size=4)
CONFIG = CtxBackConfig(rf_spec=SPEC)


def build_site(kernel, n):
    program = kernel.program
    cfg = build_cfg(program)
    liveness = analyze_liveness(program, cfg)
    block = cfg.block_at(n)
    region = number_region(
        program, block.start, block.end, entry_regs=liveness.live_in[block.start]
    )
    state = dict(region.entry)
    for pos in range(block.start, n):
        for reg, value in zip(
            program.instructions[pos].defs(), region.def_values_at(pos)
        ):
            state[reg] = value
    site = SignalSite(
        program=program,
        region=region,
        n=n,
        end_state=state,
        rf_spec=SPEC,
        model=ReversibilityModel.PAPER,
    )
    return site, liveness


def generate_for(kernel, n, p):
    site, liveness = build_site(kernel, n)
    resolver = Resolver(site, p)
    live = liveness.live_in[n]
    roots = {}
    for reg in sorted(live, key=str):
        node = resolver.resolve(site.end_state[reg])
        assert node is not None
        roots[reg] = node
    return generate_routines(site, p, roots, live, lds_bytes=0)


class TestGeneratedStructure:
    def test_stores_precede_reverts_precede_recovered_stores(self, fig3_kernel):
        generated = generate_for(fig3_kernel, 4, 0)
        mnemonics = [i.mnemonic for i in generated.preempt.instructions]
        revert_at = mnemonics.index("v_sub")
        # the recovered register's store comes after the revert
        assert any(m.startswith("ctx_store") for m in mnemonics[revert_at + 1:])
        # and every pre-revert instruction is a plain store
        assert all(m.startswith("ctx_store") for m in mnemonics[:revert_at])

    def test_saved_bytes_match_stores(self, fig3_kernel):
        generated = generate_for(fig3_kernel, 4, 0)
        assert generated.saved_bytes == sum(s.nbytes for s in generated.saved)
        stores = [
            i
            for i in generated.preempt.instructions
            if i.mnemonic.startswith("ctx_store")
        ]
        assert len(stores) == len(generated.saved)

    def test_resume_loads_reference_saved_slots(self, fig3_kernel):
        generated = generate_for(fig3_kernel, 4, 0)
        slots = {s.slot for s in generated.saved}
        for instruction in generated.resume.instructions:
            if instruction.mnemonic.startswith("ctx_load"):
                assert instruction.srcs[-1].value in slots

    def test_reexec_positions_within_region(self, fig6_kernel):
        generated = generate_for(fig6_kernel, 5, 0)
        assert all(0 <= pos < 5 for pos in generated.reexec_positions)

    def test_lds_swap_emitted_when_requested(self, fig3_kernel):
        site, liveness = build_site(fig3_kernel, 4)
        resolver = Resolver(site, 0)
        roots = {
            reg: resolver.resolve(site.end_state[reg])
            for reg in sorted(liveness.live_in[4], key=str)
        }
        generated = generate_routines(site, 0, roots, liveness.live_in[4], 128)
        assert generated.preempt.instructions[-1].mnemonic == "ctx_store_lds"
        assert generated.resume.instructions[0].mnemonic == "ctx_load_lds"

    def test_stores_never_reexecuted(self, loop_kernel):
        analyzer = FlashbackAnalyzer(loop_kernel, CONFIG)
        for n in range(len(loop_kernel.program.instructions)):
            plan = analyzer.plan_at(n)
            for instruction in plan.resume_routine.instructions:
                assert instruction.mnemonic != "global_store"


class TestDegradePath:
    def test_forced_direct_produces_plan(self, fig6_kernel):
        """Pinning every value to direct save must still generate: this is
        the LIVE-equivalent fallback the analyzer relies on."""
        site, liveness = build_site(fig6_kernel, 5)
        live = liveness.live_in[5]
        all_vids = frozenset(
            site.end_state[reg].vid for reg in live
        )
        resolver = Resolver(site, 5, forced_direct=all_vids)
        roots = {}
        for reg in sorted(live, key=str):
            node = resolver.resolve(site.end_state[reg])
            assert node is not None
            roots[reg] = node
        generated = generate_routines(site, 5, roots, live, 0)
        assert generated.reexec_positions == []

    def test_generation_failure_carries_value(self):
        with pytest.raises(GenerationFailure) as excinfo:
            raise GenerationFailure.__new__(GenerationFailure) if False else (
                _ for _ in ()
            ).throw(
                GenerationFailure(
                    __import__(
                        "repro.compiler.usedef", fromlist=["Value"]
                    ).Value(1, None, -1),
                    "test",
                )
            )
        assert "test" in str(excinfo.value)


class TestPlanExecutability:
    """Every routine the analyzer emits must assemble-roundtrip and contain
    only non-branch instructions the simulator can execute."""

    @pytest.mark.parametrize("position", [0, 2, 4, 6, 8, 10, 12])
    def test_loop_kernel_routines_wellformed(self, loop_kernel, position):
        from repro.isa import parse as parse_asm, serialize

        analyzer = FlashbackAnalyzer(loop_kernel, CONFIG)
        plan = analyzer.plan_at(position)
        for routine in (plan.preempt_routine, plan.resume_routine):
            routine.validate()
            text = serialize(routine)
            assert parse_asm(text).instructions == routine.instructions
