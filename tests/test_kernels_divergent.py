"""Divergent extension workloads: functional semantics + exhaustive
preempt-anywhere verification under every mechanism."""

import numpy as np
import pytest

from repro.kernels.divergent import (
    DIVERGENT_WORKLOADS,
    launch_masked_accumulate,
    launch_sparse_relu,
)
from repro.mechanisms import ALL_MECHANISMS, make_mechanism
from repro.sim import GPUConfig, run_preemption_experiment, run_reference

CONFIG = GPUConfig.small(warp_size=8)


class TestFunctional:
    def test_sparse_relu_merges_lanes(self):
        launch = launch_sparse_relu(warp_size=8, iterations=4, num_warps=1)
        result = run_reference(launch.spec(), CONFIG)
        from repro.kernels import A_BASE, OUT_BASE

        xs = result.memory.load_array(A_BASE, 8).view(np.float32)
        out = result.memory.load_array(OUT_BASE, 8).view(np.float32)
        for lane in range(8):
            expected = xs[lane] * 0.125 if lane % 2 == 0 else xs[lane]
            assert out[lane] == pytest.approx(expected), lane

    def test_masked_accumulate_only_low_half(self):
        launch = launch_masked_accumulate(warp_size=8, iterations=4, num_warps=1)
        result = run_reference(launch.spec(), CONFIG)
        from repro.kernels import OUT_BASE

        # last stored accumulator: low half accumulated, high half still 0
        last = result.memory.load_array(OUT_BASE + 3 * 8 * 4, 8)
        assert all(last[:4] > 0)
        assert all(last[4:] == 0)

    def test_warp_size_limit_enforced(self):
        with pytest.raises(ValueError, match="32-bit"):
            launch_sparse_relu(warp_size=64)

    def test_masked_mov_gets_fresh_value_identity(self):
        """The copy-propagation regression: a masked v_mov is a merge."""
        from repro.compiler import (
            build_cfg,
            number_region,
            partial_exec_positions,
        )
        from repro.kernels.divergent import build_sparse_relu

        kernel = build_sparse_relu(8)
        program = kernel.program
        partial = partial_exec_positions(program, build_cfg(program))
        masked_movs = [
            pos
            for pos in partial
            if program.instructions[pos].mnemonic == "v_mov"
        ]
        assert masked_movs
        loop = program.target_index("LOOP")
        region = number_region(
            program, loop, len(program.instructions), partial_exec=partial
        )
        for pos in masked_movs:
            src_value = region.use_values_at(pos)[0]
            dst_value = region.def_values_at(pos)[0]
            assert dst_value is not src_value


@pytest.mark.parametrize("workload", sorted(DIVERGENT_WORKLOADS))
@pytest.mark.parametrize("mechanism", sorted(ALL_MECHANISMS))
def test_preempt_every_loop_offset(workload, mechanism):
    _build, launch_fn = DIVERGENT_WORKLOADS[workload]
    launch = launch_fn(warp_size=8, iterations=6, num_warps=2)
    n = len(launch.kernel.program.instructions)
    prepared = make_mechanism(mechanism).prepare(launch.kernel, CONFIG)
    failures = []
    for dyn in range(2 * n, 3 * n + 2):
        result = run_preemption_experiment(
            launch.spec(), prepared, CONFIG, signal_dyn=dyn, resume_gap=100
        )
        if not result.verified:
            failures.append(dyn)
    assert not failures, failures
