"""Fleet fault model: injection, failover, admission, oracle, determinism.

Four pillars:

1. **Seeded injection** — the fleet schedule is a pure function of the
   plan seed; crashes never kill the last survivor; fleet kinds are
   refused by the cycle-level injector and vice versa.
2. **Hand-checkable resilience accounting** — crash orphaning, degrade
   slowdown, stalls, queue drops, cadence checkpoints, and the
   token-bucket/retry/shed path are pinned on scenarios small enough to
   verify on paper.
3. **Failover correctness** — the batch-job ledger conserves jobs across
   crash/migration interleavings (completes on target or re-queues,
   never double-executes), and recovery cost scales with the snapshot
   size (CTXBack's smaller contexts ⇒ cheaper cadence ⇒ faster
   failover).
4. **Determinism** — a chaos-serve report is bit-identical across engine
   worker counts and across both execution cores, and its oracle passes.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    SimulationHangError,
    fleet_scenario,
    fleet_scenario_names,
)
from repro.serve import (
    DEFAULT_TENANTS,
    AdmissionPolicy,
    FleetEvent,
    MechanismCosts,
    MigrationCosts,
    ResilienceKnobs,
    TraceSpec,
    build_fleet_schedule,
    plan_resilience,
    render_serve_json,
    run_serve_chaos,
    simulate_resilient_shard,
    simulate_shard,
)
from repro.analysis import ExperimentEngine
from repro.sim import GPUConfig

ONLY = (
    dataclasses.replace(DEFAULT_TENANTS[0], name="only", priority=1,
                        service_us=100.0, slo_us=120.0, weight=1.0),
)
FREE = MechanismCosts("x", preempt_us=0.0, resume_us=0.0)
COSTS = MechanismCosts("x", preempt_us=10.0, resume_us=6.0)
MIG = MigrationCosts(snapshot_us=40.0, transfer_us=100.0, restore_us=20.0)


def _shard(*arrivals):
    return tuple((t, 0) for t in arrivals)


class TestFleetSchedule:
    def test_seeded_determinism(self):
        plan = fleet_scenario("mixed", seed=11)
        a = build_fleet_schedule(plan, 4, 50_000.0)
        b = build_fleet_schedule(plan, 4, 50_000.0)
        assert a == b
        assert a != build_fleet_schedule(
            fleet_scenario("mixed", seed=12), 4, 50_000.0
        )

    def test_schedule_is_time_sorted_and_bounded(self):
        for name in fleet_scenario_names():
            events = build_fleet_schedule(
                fleet_scenario(name, seed=3), 4, 30_000.0
            )
            times = [e.time_us for e in events]
            assert times == sorted(times)
            assert all(0.0 <= t <= 30_000.0 for t in times)
            assert all(0 <= e.gpu < 4 for e in events)

    def test_last_survivor_is_never_killed(self):
        # a storm of more crashes than GPUs must leave one survivor
        plan = FaultPlan(
            seed=5,
            specs=tuple(FaultSpec(FaultKind.GPU_CRASH) for _ in range(6)),
            name="storm",
        )
        events = build_fleet_schedule(plan, 3, 10_000.0)
        crashes = [e for e in events if e.kind == "gpu_crash"]
        assert len(crashes) == 2
        assert len({e.gpu for e in crashes}) == 2

    def test_fleet_kinds_refused_by_cycle_level_injector(self):
        plan = fleet_scenario("crash")
        with pytest.raises(ValueError, match="cycle-level"):
            plan.build()

    def test_cycle_kinds_refused_by_fleet_schedule(self):
        plan = FaultPlan.single(FaultKind.CTX_CORRUPT)
        with pytest.raises(ValueError, match="fleet"):
            build_fleet_schedule(plan, 2, 1_000.0)


class TestResilientScheduler:
    def test_clean_path_matches_plain_scheduler(self):
        # no faults, no admission pressure: the resilient loop must charge
        # exactly what the PR 7 scheduler charges
        requests = ((0.0, 0), (5.0, 0), (1000.0, 0))
        plain = simulate_shard(requests, ONLY, COSTS)
        resilient = simulate_resilient_shard(requests, ONLY, COSTS)
        assert [lat for _, lat, _ in resilient.latencies] == [
            lat for _, lat in plain.latencies
        ]
        assert resilient.overhead_us == plain.overhead_us
        assert resilient.episodes == plain.episodes
        assert resilient.makespan_us == plain.makespan_us

    def test_crash_orphans_queued_and_in_flight_work(self):
        # service 100: r0 runs 0→100, r1 queued; crash at 50 kills both
        result = simulate_resilient_shard(
            _shard(0.0, 5.0, 2000.0), ONLY, FREE, crash_at=50.0
        )
        assert result.crashed
        assert result.latencies == []
        assert [rid for rid, *_ in result.orphans] == [0, 1]
        # the arrival at 2000 lands after death → redirect, not orphan
        assert [r[2] for r in result.redirects] == [2]

    def test_completions_before_the_crash_stand(self):
        result = simulate_resilient_shard(
            _shard(0.0, 500.0), ONLY, FREE, crash_at=200.0
        )
        assert [rid for _, _, rid in result.latencies] == [0]
        assert [r[2] for r in result.redirects] == [1]

    def test_degrade_window_slows_service(self):
        ops = ((0.0, "degrade_on", 2.0), (150.0, "degrade_off", 2.0))
        result = simulate_resilient_shard(
            _shard(0.0, 1000.0), ONLY, FREE, ops=ops
        )
        # r0 serves at factor 2 (200 µs), r1 after the window (100 µs)
        assert [lat for _, lat, _ in result.latencies] == [200.0, 100.0]

    def test_stall_freezes_the_gpu(self):
        result = simulate_resilient_shard(
            _shard(0.0,), ONLY, FREE, ops=((0.0, "stall", 300.0),)
        )
        assert result.stalls == 1
        assert [lat for _, lat, _ in result.latencies] == [400.0]

    def test_queue_drop_evicts_lowest_priority_first(self):
        tenants = (
            dataclasses.replace(ONLY[0], name="low", priority=1),
            dataclasses.replace(ONLY[0], name="high", priority=3),
        )
        # r0 in service; low+high queued when the drop (count=1) fires
        result = simulate_resilient_shard(
            ((0.0, 0), (10.0, 0), (20.0, 1)), tenants, FREE,
            ops=((30.0, "drop", 1.0),),
            admission=AdmissionPolicy(retry_max=0),
        )
        assert result.dropped == 1
        # the low-priority queued request was dropped and (retry_max=0) shed
        assert [t for t, _rid, _a in result.shed] == [0]
        assert [t for t, _lat, _ in result.latencies] == [0, 1]

    def test_cadence_checkpoints_bound_lost_progress(self):
        result = simulate_resilient_shard(
            (), ONLY, FREE, crash_at=1050.0,
            ckpt_cadence_us=250.0, ckpt_snapshot_us=5.0,
        )
        assert result.crashed
        assert result.checkpoints == 4  # 250, 500, 750, 1000
        assert result.last_ckpt_us == 1000.0
        assert result.checkpoint_us == 4 * 5.0

    def test_checkpoint_free_while_batch_evicted(self):
        # the batch job is evicted during the long request: the cadence
        # checkpoint at 50 sees its context already saved → zero cost
        result = simulate_resilient_shard(
            _shard(0.0,), ONLY, COSTS,
            ckpt_cadence_us=50.0, ckpt_snapshot_us=5.0,
        )
        assert result.free_checkpoints >= 1

    def test_retry_backoff_is_deterministic_and_seeded(self):
        # one token at t=0, refilling at 0.01/µs: r1 is refused twice and
        # admitted on its third attempt, whose time depends on the jitter
        policy = AdmissionPolicy(
            rate_per_us=0.01, burst=1.0, retry_backoff_us=50.0, retry_max=2
        )
        run = lambda seed: simulate_resilient_shard(  # noqa: E731
            _shard(0.0, 1.0), ONLY, FREE,
            admission=policy, seed=seed,
        )
        a, b, c = run(0), run(0), run(7)
        assert a.as_dict() == b.as_dict()
        assert a.retries > 0 and not a.shed
        # the jitter derives from the seed, so a different seed lands the
        # admitted retry — and its recorded latency — at a different time
        assert a.as_dict() != c.as_dict()

    def test_token_exhaustion_sheds_past_retry_budget(self):
        policy = AdmissionPolicy(
            rate_per_us=1e-9, burst=1.0, retry_backoff_us=10.0, retry_max=1
        )
        result = simulate_resilient_shard(
            _shard(0.0, 1.0), ONLY, FREE, admission=policy
        )
        assert len(result.latencies) == 1
        assert len(result.shed) == 1
        assert result.shed[0][2] == 2  # attempts consumed: 1 retry + final

    def test_depth_cap_respects_priority_bypass(self):
        tenants = (
            dataclasses.replace(ONLY[0], name="low", priority=1),
            dataclasses.replace(ONLY[0], name="vip", priority=3),
        )
        policy = AdmissionPolicy(
            rate_per_us=10.0, burst=100.0, max_queue_depth=1,
            bypass_priority=3, retry_max=0,
        )
        # r0 in service, r1 fills the queue; low r2 refused, vip r3 admitted
        result = simulate_resilient_shard(
            ((0.0, 0), (1.0, 0), (2.0, 0), (3.0, 1)), tenants, FREE,
            admission=policy,
        )
        assert [t for t, _rid, _a in result.shed] == [0]
        assert len(result.latencies) == 3

    def test_hang_watchdog_reports_fleet_context(self):
        with pytest.raises(SimulationHangError) as excinfo:
            simulate_resilient_shard(
                _shard(0.0, 1.0, 2.0, 3.0), ONLY, COSTS,
                gpu=3, max_steps=1,
            )
        message = str(excinfo.value)
        assert "fleet context:" in message
        assert "gpu=3" in message
        assert "request_id=" in message and "tenant=only" in message
        assert excinfo.value.fleet["gpu"] == 3
        assert excinfo.value.fleet["queue_depth"] >= 1


class TestFailoverPlanner:
    def _plan(self, schedule, shards=None, knobs=None, tenants=ONLY):
        if shards is None:
            shards = [_shard(0.0, 3000.0), _shard(1.0), _shard(2.0)]
        return plan_resilience(
            shards, tenants, FREE, tuple(schedule), MIG,
            knobs=knobs or ResilienceKnobs(ckpt_cadence_us=1000.0),
        )

    def test_crash_requeues_work_and_restores_the_job(self):
        plan = self._plan([FleetEvent("gpu_crash", 2500.0, 0)])
        assert plan.crash_at == [2500.0, None, None]
        # gpu0's batch job restored exactly once on a survivor
        restores = [
            op for g in (1, 2) for op in plan.ops[g] if op[1] == "restore"
        ]
        assert len(restores) == 1
        assert [f.kind for f in plan.failovers] == ["failover"]
        assert plan.hosted[0] == 0 and sum(plan.hosted) == 3
        # the request at 3000 re-queued onto a survivor with its original
        # arrival preserved (latency keeps counting from 3000? no — from
        # its true arrival), rid 3 = index 1 on gpu 0
        moved = [
            e for g in (1, 2) for e in plan.streams[g] if e[2] == 3
        ]
        assert len(moved) == 1
        assert moved[0][3] == 3000.0  # original arrival preserved

    def test_lost_progress_follows_checkpoint_cadence(self):
        tight = self._plan(
            [FleetEvent("gpu_crash", 2500.0, 0)],
            knobs=ResilienceKnobs(ckpt_cadence_us=100.0),
        )
        loose = self._plan(
            [FleetEvent("gpu_crash", 2500.0, 0)],
            knobs=ResilienceKnobs(ckpt_cadence_us=2000.0),
        )
        assert tight.failovers[0].lost_progress_us < (
            loose.failovers[0].lost_progress_us
        )
        assert tight.failovers[0].recovery_us < loose.failovers[0].recovery_us

    def test_watchdog_migrates_batch_off_persistent_degrade(self):
        plan = self._plan(
            [FleetEvent("gpu_degrade", 250.0, 0, duration_us=0.0, factor=3.0)]
        )
        assert [f.kind for f in plan.failovers] == ["watchdog"]
        # detection at the first 1000 µs watchdog tick after onset
        assert plan.failovers[0].at_us == 1000.0
        outs = [op for op in plan.ops[0] if op[1] == "out"]
        assert len(outs) == 1
        assert sum(plan.hosted) == 3

    def test_crash_of_source_after_snapshot_completes_on_target(self):
        # the watchdog moves gpu0's job out at t=1000; gpu0 then dies.
        # The snapshot already left: the restore proceeds on the target,
        # and the crash has nothing left to fail over.
        plan = self._plan(
            [
                FleetEvent("gpu_degrade", 250.0, 0, duration_us=0.0,
                           factor=3.0),
                FleetEvent("gpu_crash", 1100.0, 0),
            ]
        )
        kinds = [f.kind for f in plan.failovers]
        assert kinds == ["watchdog"]
        restores = [
            op for g in (1, 2) for op in plan.ops[g] if op[1] == "restore"
        ]
        assert len(restores) == 1
        assert sum(plan.hosted) == 3

    def test_crash_of_target_before_restore_reroutes_not_duplicates(self):
        # gpu0's job migrates toward gpu1 (in-flight transfer), but gpu1
        # dies before the restore applies: the existing snapshot re-routes
        # to another survivor — restored exactly once, never twice
        probe = self._plan(
            [FleetEvent("gpu_degrade", 250.0, 0, duration_us=0.0, factor=3.0)]
        )
        (restore,) = [
            (g, op)
            for g in (1, 2)
            for op in probe.ops[g]
            if op[1] == "restore"
        ]
        target = restore[0]
        crash_t = restore[1][0] - 1.0  # strictly before the restore applies
        plan = self._plan(
            [
                FleetEvent("gpu_degrade", 250.0, 0, duration_us=0.0,
                           factor=3.0),
                FleetEvent("gpu_crash", crash_t, target),
            ]
        )
        kinds = sorted(f.kind for f in plan.failovers)
        assert kinds == ["failover", "rerouted", "watchdog"]
        # exactly two live restores remain: the re-routed job + the dead
        # target's own batch job; none on the dead GPU
        survivors = [g for g in range(3) if plan.crash_at[g] is None]
        live_restores = [
            op for g in survivors for op in plan.ops[g] if op[1] == "restore"
        ]
        assert len(live_restores) == 2
        assert not any(op[1] == "restore" for op in plan.ops[target])
        assert sum(plan.hosted) == 3 and plan.hosted[target] == 0


def _small_chaos(jobs=1, core=None, seed=0, scenario="mixed", cadence=5000.0):
    config = GPUConfig.small(4)
    if core is not None:
        config = dataclasses.replace(config, core=core)
    return run_serve_chaos(
        ("baseline", "ctxback"),
        scenario=scenario,
        trace=TraceSpec(kind="bursty", seed=seed),
        loads=(0.6,),
        requests=400,
        gpus=3,
        key="mm",
        config=config,
        iterations=6,
        samples=1,
        engine=ExperimentEngine(jobs=jobs),
        knobs=ResilienceKnobs(ckpt_cadence_us=cadence),
    )


class TestChaosServe:
    def test_identical_across_jobs(self):
        a = render_serve_json(_small_chaos(jobs=1))
        b = render_serve_json(_small_chaos(jobs=3))
        assert a == b

    def test_identical_across_cores(self):
        a = render_serve_json(_small_chaos(core="fast"))
        b = render_serve_json(_small_chaos(core="reference"))
        assert a == b

    def test_oracle_passes_every_scenario(self):
        for scenario in fleet_scenario_names():
            report = _small_chaos(scenario=scenario)
            assert report["oracle"]["ok"], report["oracle"]

    def test_report_counts_faults_and_recovery(self):
        report = _small_chaos(scenario="crash")
        cell = report["results"][0]
        assert cell["crashes"] == 1
        assert cell["failovers"] == 1
        assert cell["recovery_us"]["p99"] > 0
        assert 0.0 < cell["availability"] <= 1.0
        parsed = json.loads(render_serve_json(report))
        assert parsed["chaos"]["scenario"] == "crash"
        assert parsed["oracle"]["ok"] is True

    def test_ctxback_recovers_no_slower_than_baseline(self):
        # the paper's argument in the failure regime: a smaller context
        # means a smaller snapshot, cheaper cadence checkpoints, and a
        # faster crash recovery
        report = _small_chaos(scenario="crash")
        by_mech = {c["mechanism"]: c for c in report["results"]}
        assert (
            report["chaos"]["snapshot_bytes"]["ctxback"]
            < report["chaos"]["snapshot_bytes"]["baseline"]
        )
        assert (
            by_mech["ctxback"]["recovery_us"]["p99"]
            <= by_mech["baseline"]["recovery_us"]["p99"]
        )
        assert (
            by_mech["ctxback"]["checkpoints"]["overhead_us"]
            <= by_mech["baseline"]["checkpoints"]["overhead_us"]
        )

    def test_cadence_tradeoff_visible_in_report(self):
        tight = _small_chaos(scenario="crash", cadence=500.0)
        loose = _small_chaos(scenario="crash", cadence=20_000.0)
        t = {c["mechanism"]: c for c in tight["results"]}["ctxback"]
        l = {c["mechanism"]: c for c in loose["results"]}["ctxback"]
        # tighter cadence: more checkpoint overhead, less lost progress
        assert t["checkpoints"]["taken"] > l["checkpoints"]["taken"]
        assert (
            t["recovery_us"]["lost_progress"]
            <= l["recovery_us"]["lost_progress"]
        )
