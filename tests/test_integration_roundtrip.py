"""The repo's ground-truth invariant (DESIGN.md §4):

    preempt anywhere + resume  ==  never preempting,

bit-exact on the final memory image, for every mechanism, on real benchmark
kernels.  The register file is *cleared* at eviction, so a passing run proves
the generated routines rebuild everything the kernel still needed.
"""

import pytest

from repro.kernels import SUITE
from repro.mechanisms import ALL_MECHANISMS, make_mechanism
from repro.sim import GPUConfig, run_preemption_experiment

CONFIG = GPUConfig.small(warp_size=8)
MECHANISMS = sorted(ALL_MECHANISMS)
# a representative cross-section: low pressure (va), high pressure + LDS
# (mm), LDS-hazard-limited regions (hs), high persistent floor (km)
KERNEL_KEYS = ("va", "mm", "hs", "km")


def _experiment(key, mechanism, signal_dyn, resume_gap=600):
    bench = SUITE[key]
    launch = bench.launch(warp_size=8, iterations=8, num_warps=2)
    prepared = make_mechanism(mechanism).prepare(launch.kernel, CONFIG)
    return run_preemption_experiment(
        launch.spec(), prepared, CONFIG, signal_dyn=signal_dyn, resume_gap=resume_gap
    )


@pytest.mark.parametrize("mechanism", MECHANISMS)
@pytest.mark.parametrize("key", KERNEL_KEYS)
class TestRoundTrip:
    def test_mid_loop_signal(self, key, mechanism):
        n = len(SUITE[key].build(8).program.instructions)
        result = _experiment(key, mechanism, signal_dyn=3 * n + 5)
        assert result.verified, f"{key}/{mechanism} diverged from reference"

    def test_preamble_signal(self, key, mechanism):
        result = _experiment(key, mechanism, signal_dyn=2)
        assert result.verified

    def test_late_signal(self, key, mechanism):
        n = len(SUITE[key].build(8).program.instructions)
        result = _experiment(key, mechanism, signal_dyn=6 * n + 11)
        assert result.verified


@pytest.mark.parametrize("key", KERNEL_KEYS)
def test_every_loop_offset_ctxback(key):
    """Sweep the signal across a whole loop iteration's worth of dynamic
    instructions: every flashback plan in the loop body must round-trip."""
    bench = SUITE[key]
    launch = bench.launch(warp_size=8, iterations=8, num_warps=1)
    kernel = launch.kernel
    loop_start = kernel.program.target_index("LOOP")
    # loop body length in the ORIGINAL program; OSRB may add instructions,
    # so sweep a window comfortably covering one instrumented iteration
    n = len(kernel.program.instructions)
    prepared = make_mechanism("ctxback").prepare(kernel, CONFIG)
    body_len = len(prepared.kernel.program.instructions) - loop_start
    base = 2 * n
    failures = []
    for offset in range(body_len + 2):
        result = run_preemption_experiment(
            launch.spec(),
            prepared,
            CONFIG,
            signal_dyn=base + offset,
            resume_gap=300,
        )
        if not result.verified:
            failures.append((offset, [m.signal_pc for m in result.measurements]))
    assert not failures, failures


def test_latency_ordering_on_high_pressure_kernel():
    """baseline > live >= ctxback on a high-variety kernel (Fig. 8 shape);
    CTXBack strictly beats LIVE at some signal points and never loses."""
    key, n = "mm", len(SUITE["mm"].build(8).program.instructions)
    points = [3 * n + k for k in (2, 9, 16, 23)]

    def mean_latency(mechanism):
        return [
            _experiment(key, mechanism, signal_dyn=dyn).mean_latency
            for dyn in points
        ]

    baseline = mean_latency("baseline")
    live = mean_latency("live")
    ctxback = mean_latency("ctxback")
    ckpt = mean_latency("ckpt")

    for b, l, c, k in zip(baseline, live, ctxback, ckpt):
        assert b > l >= c
        assert k < c
    assert sum(ctxback) < sum(live)  # strictly better somewhere

    base_resume = _experiment(key, "baseline", signal_dyn=points[0]).mean_resume
    ctx_resume = _experiment(key, "ctxback", signal_dyn=points[0]).mean_resume
    assert base_resume > ctx_resume


def test_csdefer_resume_never_reexecutes():
    """CS-Defer's resume is a plain reload: fewer instructions than CTXBack's
    (it pays at preemption instead — the paper's §IV-C trade-off)."""
    key = "relu"
    bench = SUITE[key]
    launch = bench.launch(warp_size=8, iterations=8, num_warps=1)
    defer = make_mechanism("csdefer").prepare(launch.kernel, CONFIG)
    for plan in defer.plans.values():
        for instruction in plan.resume_routine.instructions:
            assert instruction.mnemonic.startswith("ctx_load")
