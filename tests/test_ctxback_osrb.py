"""On-chip scalar register backup: selection heuristic + instrumentation."""

from repro.ctxback.osrb import apply_osrb, select_backups
from repro.isa import Kernel, RegisterFileSpec, parse, sreg

SPEC = RegisterFileSpec(warp_size=4)


def _kernel(src, sgprs=10):
    return Kernel("k", parse(src), vgprs_used=8, sgprs_used=sgprs, noalias=True)


OSRB_TARGET = """
    v_mul v1, v2, s4
    v_add v3, v1, s4
    s_mul s4, s4, 5
    global_store v4, v1, 0
    global_store v4, v3, 4
    s_endpgm
"""


class TestSelection:
    def test_irreversibly_overwritten_scalar_selected(self):
        backups = select_backups(_kernel(OSRB_TARGET), SPEC)
        assert len(backups) == 1
        assert backups[0].source_index == 4
        assert backups[0].benefit == 2  # two vector-result users

    def test_reversible_overwrite_skipped(self):
        # s_add is revertible: instruction reverting recovers the old value,
        # so OSRB does not spend a backup register on it
        src = OSRB_TARGET.replace("s_mul s4, s4, 5", "s_add s4, s4, 5")
        assert select_backups(_kernel(src), SPEC) == []

    def test_unused_scalar_skipped(self):
        src = """
            v_mul v1, v2, v3
            s_mul s4, s4, 5
            global_store v4, v1, 0
            s_endpgm
        """
        assert select_backups(_kernel(src), SPEC) == []

    def test_scalar_only_users_skipped(self):
        # old value feeds only scalar results: nothing vector-sized to save
        src = """
            s_add s6, s4, 1
            s_mul s4, s4, 5
            global_store v4, v1, 0
            s_endpgm
        """
        assert select_backups(_kernel(src), SPEC) == []

    def test_no_padding_no_backups(self):
        # 16 sgprs used = allocation boundary: no free padding registers
        backups = select_backups(_kernel(OSRB_TARGET, sgprs=16), SPEC)
        assert backups == []

    def test_backup_uses_padding_index(self):
        backups = select_backups(_kernel(OSRB_TARGET, sgprs=10), SPEC)
        assert backups[0].backup_index == 10  # first padding register


class TestTransform:
    def test_mov_inserted_at_block_start(self):
        kernel = _kernel(OSRB_TARGET)
        new_kernel, report = apply_osrb(kernel, SPEC)
        assert report.count == 1
        first = new_kernel.program.instructions[0]
        assert first.mnemonic == "s_mov"
        assert first.srcs[0] == sreg(4)

    def test_allocation_unchanged(self):
        kernel = _kernel(OSRB_TARGET)
        new_kernel, _ = apply_osrb(kernel, SPEC)
        assert SPEC.allocated_sgprs(new_kernel.sgprs_used) == SPEC.allocated_sgprs(
            kernel.sgprs_used
        )

    def test_noop_when_nothing_selected(self):
        src = "v_add v1, v2, v3\nglobal_store v4, v1, 0\ns_endpgm"
        kernel = _kernel(src)
        new_kernel, report = apply_osrb(kernel, SPEC)
        assert report.count == 0
        assert new_kernel is kernel

    def test_loop_header_backup_runs_per_iteration(self):
        src = """
            s_mov s5, 0
        LOOP:
            v_mul v1, v2, s4
            s_mul s4, s4, 5
            global_store v3, v1, 0
            s_add s5, s5, 1
            s_cmp_lt s5, s6
            s_cbranch_scc1 LOOP
            s_endpgm
        """
        kernel = _kernel(src)
        new_kernel, report = apply_osrb(kernel, SPEC)
        assert report.count == 1
        header = new_kernel.program.target_index("LOOP")
        assert new_kernel.program.instructions[header].mnemonic == "s_mov"

    def test_reduces_ctxback_context(self):
        from repro.ctxback import CtxBackConfig, FlashbackAnalyzer

        src = """
            s_mov s5, 0
        LOOP:
            v_mul v1, v2, s4
            v_mul v6, v2, s4
            s_mul s4, s4, 5
            global_store v3, v1, 0
            global_store v3, v6, 4
            s_add s5, s5, 1
            s_cmp_lt s5, s6
            s_cbranch_scc1 LOOP
            s_endpgm
        """
        kernel = _kernel(src)
        with_osrb, _ = apply_osrb(kernel, SPEC)
        config = CtxBackConfig(rf_spec=SPEC, enable_osrb=False)
        # signal right after the scalar was clobbered but with the vector
        # results dead-ahead: the backup enables re-execution
        n_plain = 4  # at the first global_store in the plain kernel
        plain = FlashbackAnalyzer(kernel, config).plan_at(n_plain)
        instr = FlashbackAnalyzer(with_osrb, config).plan_at(n_plain + 1)
        assert instr.context_bytes <= plain.context_bytes
