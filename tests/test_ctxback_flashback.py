"""Flashback-point search: paper examples, candidates, plan structure."""

import pytest

from repro.ctxback import CtxBackConfig, FlashbackAnalyzer
from repro.isa import Kernel, RegisterFileSpec, parse

SPEC = RegisterFileSpec(warp_size=4)
CONFIG = CtxBackConfig(rf_spec=SPEC)


def analyzer_for(kernel):
    return FlashbackAnalyzer(kernel, CONFIG)


def _mnemonics(program):
    return [i.mnemonic for i in program.instructions]


class TestPaperExamples:
    def test_fig3_reverts_at_preemption(self, fig3_kernel):
        plan = analyzer_for(fig3_kernel).plan_at(4)
        assert plan.flashback_pos == 0
        preempt = _mnemonics(plan.preempt_routine)
        assert "v_sub" in preempt  # the constructed inverse of the v_add
        # the inverse executes before the store of the recovered register
        assert preempt.index("v_sub") < len(preempt) - 1
        assert plan.reexec_count >= 3  # XOR, MUL, MOV re-executed

    def test_fig4_reverts_during_resume(self, fig4_kernel):
        analyzer = analyzer_for(fig4_kernel)
        plan = analyzer.build_plan_at(4, 0)
        assert plan is not None
        assert "v_sub" in _mnemonics(plan.resume_routine)
        assert "v_sub" not in _mnemonics(plan.preempt_routine)

    def test_fig6_chained_reverting(self, fig6_kernel):
        plan = analyzer_for(fig6_kernel).plan_at(5)
        assert plan.flashback_pos == 0
        # revert of the later v_add happens at preemption...
        assert "v_sub" in _mnemonics(plan.preempt_routine)
        # ...and the earlier overwrite is undone during resume
        assert "v_sub" in _mnemonics(plan.resume_routine)

    def test_fig3_context_smaller_than_live(self, fig3_kernel):
        from repro.ctxback import live_context_bytes_at

        plan = analyzer_for(fig3_kernel).plan_at(4)
        assert plan.context_bytes < live_context_bytes_at(fig3_kernel, 4, SPEC)


class TestDegenerateCases:
    def test_position_zero_is_live_equivalent(self, fig3_kernel):
        from repro.ctxback import live_context_bytes_at

        plan = analyzer_for(fig3_kernel).plan_at(0)
        assert plan.flashback_pos == 0
        assert plan.context_bytes == live_context_bytes_at(fig3_kernel, 0, SPEC)
        assert plan.reexec_count == 0

    def test_decays_to_live_without_variety(self):
        # every register stays live: no preceding instruction is better
        kernel = Kernel(
            "flat",
            parse(
                """
                v_add v1, v2, v3
                v_add v4, v2, v3
                global_store v5, v1, 0
                global_store v5, v4, 4
                global_store v5, v2, 8
                global_store v5, v3, 12
                s_endpgm
                """
            ),
            8,
            16,
            noalias=True,
        )
        from repro.ctxback import live_context_bytes_at

        plan = analyzer_for(kernel).plan_at(2)
        assert plan.context_bytes <= live_context_bytes_at(kernel, 2, SPEC)

    def test_every_position_has_a_plan(self, fig6_kernel):
        plans = analyzer_for(fig6_kernel).plan_all()
        assert set(plans) == set(range(len(fig6_kernel.program.instructions)))

    def test_plan_at_terminator(self, fig3_kernel):
        last = len(fig3_kernel.program.instructions) - 1
        plan = analyzer_for(fig3_kernel).plan_at(last)
        assert plan.resume_pc == last


class TestCandidates:
    def test_candidates_bounded_by_block(self, loop_kernel):
        analyzer = FlashbackAnalyzer(loop_kernel, CONFIG)
        block = analyzer.cfg.block_at(8)
        for p in analyzer.candidate_positions(8):
            assert block.start <= p <= 8

    def test_candidates_include_self(self, loop_kernel):
        analyzer = FlashbackAnalyzer(loop_kernel, CONFIG)
        assert 8 in analyzer.candidate_positions(8)

    def test_candidate_count_capped(self, loop_kernel):
        config = CtxBackConfig(rf_spec=SPEC, candidates_k=2)
        analyzer = FlashbackAnalyzer(loop_kernel, config)
        assert len(analyzer.candidate_positions(8)) <= 3  # k + forced self

    def test_idempotence_limits_candidates(self):
        kernel = Kernel(
            "hazard",
            parse(
                """
                global_load v1, v2, 0
                v_add v3, v1, v1
                global_store v2, v3, 0
                v_add v4, v3, v3
                global_store v2, v4, 4
                s_endpgm
                """
            ),
            8,
            16,
            noalias=False,  # load/store may alias: region limited
        )
        analyzer = analyzer_for(kernel)
        # signal at 4: region cannot start at/before the load at 0
        assert min(analyzer.candidate_positions(4)) >= 1


class TestAblationToggles:
    def test_disable_reverting_grows_context(self, fig3_kernel):
        full = FlashbackAnalyzer(fig3_kernel, CONFIG).plan_at(4)
        no_revert = FlashbackAnalyzer(
            fig3_kernel, CtxBackConfig(rf_spec=SPEC, enable_reverting=False)
        ).plan_at(4)
        assert no_revert.context_bytes >= full.context_bytes
        assert "v_sub" not in _mnemonics(no_revert.preempt_routine)

    def test_disable_relaxed_restricts_candidates(self):
        # Fig. 2's kernel: the strict (Fig. 1) condition cannot cross the
        # self-overwriting v_mul, the relaxed one can
        kernel = Kernel(
            "fig2",
            parse(
                """
                v_xor  v3, v4, 0xF
                v_mul  v1, v3, 0x7
                v_mul  v0, v0, v0
                v_add  v2, v0, v4
                global_store v5, v0, 0
                global_store v5, v1, 4
                global_store v5, v2, 8
                global_store v5, v3, 12
                s_endpgm
                """
            ),
            8,
            16,
            noalias=True,
        )
        relaxed = FlashbackAnalyzer(kernel, CONFIG)
        strict = FlashbackAnalyzer(
            kernel, CtxBackConfig(rf_spec=SPEC, enable_relaxed=False)
        )
        assert min(relaxed.candidate_positions(4)) < min(
            strict.candidate_positions(4)
        )


class TestPlanShape:
    def test_saved_slots_are_disjoint(self, fig6_kernel):
        plan = analyzer_for(fig6_kernel).plan_at(5)
        spans = sorted((s.slot, s.slot + s.nbytes) for s in plan.saved)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_context_bytes_cover_saved(self, fig6_kernel):
        plan = analyzer_for(fig6_kernel).plan_at(5)
        assert plan.context_bytes >= sum(s.nbytes for s in plan.saved)

    def test_estimates_positive(self, fig6_kernel):
        plan = analyzer_for(fig6_kernel).plan_at(5)
        assert plan.est_preempt_cycles > 0
        assert plan.est_resume_cycles > 0

    def test_waste_instructions(self, fig6_kernel):
        plan = analyzer_for(fig6_kernel).plan_at(5)
        assert plan.waste_instructions == 5 - plan.flashback_pos
