"""Serving layer: traces, scheduler accounting, determinism, calibration.

The three pillars the serve report stands on:

1. **Hand-checkable accounting** — the scheduler's latency/overhead/SLO
   arithmetic is pinned to a 3-request scenario small enough to verify on
   paper.
2. **Seeded determinism** — the same trace + seed yields a bit-identical
   report across engine worker counts and across both execution cores.
3. **Honest calibration** — the µs costs the scheduler charges are the
   means of real :func:`repro.sim.gpu.run_preemption_experiment` runs,
   not made-up constants.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis import ExperimentEngine
from repro.analysis.experiments import _signal_points
from repro.serve import (
    DEFAULT_TENANTS,
    FleetEvent,
    MechanismCosts,
    MigrationCosts,
    Request,
    ResilienceKnobs,
    Tenant,
    TraceSpec,
    generate_arrivals,
    mean_service_us,
    mechanism_costs,
    nearest_rank,
    plan_resilience,
    render_serve_json,
    render_serve_text,
    run_serve,
    shard_arrivals,
    simulate_resilient_shard,
    simulate_shard,
)
from repro.sim import GPUConfig, run_preemption_experiment
from repro.analysis.engine import prepared_for, _launch


SINGLE_TENANT = (
    Tenant("only", priority=1, service_us=100.0, slo_us=120.0, weight=1.0),
)


class TestArrivals:
    def test_seeded_determinism(self):
        spec = TraceSpec(kind="bursty", seed=42)
        a = generate_arrivals(spec, 500, 0.01, DEFAULT_TENANTS)
        b = generate_arrivals(spec, 500, 0.01, DEFAULT_TENANTS)
        assert a == b

    def test_seed_changes_trace(self):
        a = generate_arrivals(TraceSpec(seed=1), 100, 0.01, DEFAULT_TENANTS)
        b = generate_arrivals(TraceSpec(seed=2), 100, 0.01, DEFAULT_TENANTS)
        assert a != b

    def test_arrivals_sorted_and_counted(self):
        for kind in ("poisson", "bursty"):
            trace = generate_arrivals(
                TraceSpec(kind=kind, seed=3), 400, 0.02, DEFAULT_TENANTS
            )
            assert len(trace) == 400
            times = [r.arrival_us for r in trace]
            assert times == sorted(times)

    def test_mean_rate_is_preserved_under_burstiness(self):
        # burstiness redistributes arrivals in time; the long-run mean
        # rate must stay the requested one (within sampling noise)
        rate = 0.02
        for kind in ("poisson", "bursty"):
            trace = generate_arrivals(
                TraceSpec(kind=kind, seed=5), 20_000, rate, DEFAULT_TENANTS
            )
            empirical = len(trace) / trace[-1].arrival_us
            assert empirical == pytest.approx(rate, rel=0.1)

    def test_tenant_weights_respected(self):
        trace = generate_arrivals(TraceSpec(seed=7), 20_000, 0.01, DEFAULT_TENANTS)
        counts = [0] * len(DEFAULT_TENANTS)
        for request in trace:
            counts[request.tenant] += 1
        for tenant, count in zip(DEFAULT_TENANTS, counts):
            assert count / len(trace) == pytest.approx(tenant.weight, abs=0.02)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec(kind="uniform")
        with pytest.raises(ValueError):
            TraceSpec(burst_fraction=1.5)
        with pytest.raises(ValueError):
            TraceSpec(burst_factor=0.5)
        with pytest.raises(ValueError):
            generate_arrivals(TraceSpec(), 10, 0.0, DEFAULT_TENANTS)


class TestScheduler:
    def test_hand_computed_three_request_scenario(self):
        """1 GPU, preempt 10, resume 6, service 100 µs; arrivals 0/5/1000.

        - r0 arrives at 0: evict the batch (10), serve 10→110; latency 110.
        - r1 arrived at 5, queued: serve 110→210; latency 205.
        - queue drains: resume the batch at 210 (+6).
        - r2 arrives at 1000 (> 216): evict again (10), serve 1010→1110;
          latency 110.  Trailing resume closes the episode.
        """
        costs = MechanismCosts("x", preempt_us=10.0, resume_us=6.0)
        result = simulate_shard(
            ((0.0, 0), (5.0, 0), (1000.0, 0)), SINGLE_TENANT, costs
        )
        assert [lat for _, lat in result.latencies] == [110.0, 205.0, 110.0]
        assert result.episodes == 2
        assert result.overhead_us == 2 * (10.0 + 6.0)
        assert result.service_us == 300.0
        assert result.makespan_us == 1110.0

    def test_slo_accounting_matches_hand_scenario(self):
        # SLO 120 µs: only the queued request (205 µs) violates → 1/3
        costs = MechanismCosts("x", preempt_us=10.0, resume_us=6.0)
        result = simulate_shard(
            ((0.0, 0), (5.0, 0), (1000.0, 0)), SINGLE_TENANT, costs
        )
        violations = sum(
            1
            for tenant, lat in result.latencies
            if lat > SINGLE_TENANT[tenant].slo_us
        )
        assert violations == 1
        assert violations / len(result.latencies) == pytest.approx(1 / 3)

    def test_priority_order_beats_arrival_order(self):
        tenants = (
            Tenant("low", priority=1, service_us=10.0, slo_us=1e6, weight=0.5),
            Tenant("high", priority=2, service_us=10.0, slo_us=1e6, weight=0.5),
        )
        costs = MechanismCosts("x", preempt_us=0.0, resume_us=0.0)
        # both queued while request 0 is in service; high jumps the line
        result = simulate_shard(
            ((0.0, 0), (1.0, 0), (2.0, 1)), tenants, costs
        )
        assert [t for t, _ in result.latencies] == [0, 1, 0]

    def test_request_during_resume_waits_it_out(self):
        # the old example's bug: a request landing mid-resume must queue
        # behind the resume, then pay a fresh preemption
        costs = MechanismCosts("x", preempt_us=10.0, resume_us=50.0)
        result = simulate_shard(
            ((0.0, 0), (130.0, 0)), SINGLE_TENANT, costs
        )
        # r0: 10→110.  Resume 110→160.  r1 (at 130) waits, evicts at 160
        # (+10), serves 170→270 → latency 140.
        assert [lat for _, lat in result.latencies] == [110.0, 140.0]
        assert result.episodes == 2

    def test_empty_shard(self):
        result = simulate_shard((), SINGLE_TENANT, MechanismCosts("x", 1.0, 1.0))
        assert result.latencies == []
        assert result.overhead_us == 0.0

    def test_request_objects_and_tuples_agree(self):
        costs = MechanismCosts("x", preempt_us=3.0, resume_us=2.0)
        as_tuples = simulate_shard(((0.0, 0), (50.0, 0)), SINGLE_TENANT, costs)
        as_objects = simulate_shard(
            (Request(0.0, 0), Request(50.0, 0)), SINGLE_TENANT, costs
        )
        assert as_tuples.as_dict() == as_objects.as_dict()


class TestSharding:
    def test_round_robin_partition(self):
        spec = TraceSpec(seed=9)
        shards = shard_arrivals(spec, 100, 0.01, DEFAULT_TENANTS, gpus=3)
        assert [len(s) for s in shards] == [34, 33, 33]
        trace = generate_arrivals(spec, 100, 0.01, DEFAULT_TENANTS)
        merged = sorted(
            (req for shard in shards for req in shard), key=lambda r: r[0]
        )
        assert merged == [(r.arrival_us, r.tenant) for r in trace]

    def test_gpus_validated(self):
        with pytest.raises(ValueError):
            shard_arrivals(TraceSpec(), 10, 0.01, DEFAULT_TENANTS, gpus=0)


class TestReport:
    def test_nearest_rank_percentiles(self):
        values = [float(v) for v in range(1, 101)]
        assert nearest_rank(values, 50) == 50.0
        assert nearest_rank(values, 95) == 95.0
        assert nearest_rank(values, 99) == 99.0
        assert nearest_rank([7.0], 99) == 7.0
        assert nearest_rank([], 50) == 0.0


def _small_serve(jobs=1, core=None, seed=0):
    config = GPUConfig.small(4)
    if core is not None:
        config = dataclasses.replace(config, core=core)
    return run_serve(
        ("baseline", "ctxback"),
        trace=TraceSpec(kind="bursty", seed=seed),
        loads=(0.6,),
        requests=400,
        gpus=2,
        key="mm",
        config=config,
        iterations=6,
        samples=1,
        engine=ExperimentEngine(jobs=jobs),
    )


class TestServeDeterminism:
    def test_identical_across_jobs(self):
        a = render_serve_json(_small_serve(jobs=1))
        b = render_serve_json(_small_serve(jobs=3))
        assert a == b

    def test_identical_across_cores(self):
        # calibration runs real cycle-level experiments; the fast and
        # reference cores are bit-identical, so the report must be too
        a = render_serve_json(_small_serve(core="fast"))
        b = render_serve_json(_small_serve(core="reference"))
        assert a == b

    def test_seed_changes_report(self):
        a = render_serve_json(_small_serve(seed=0))
        b = render_serve_json(_small_serve(seed=1))
        assert a != b

    def test_renderers_consume_report(self):
        report = _small_serve()
        parsed = json.loads(render_serve_json(report))
        assert parsed["version"] == 1
        assert {cell["mechanism"] for cell in parsed["results"]} == {
            "baseline",
            "ctxback",
        }
        text = render_serve_text(report)
        assert "ctxback" in text and "p99 us" in text


class TestCalibration:
    def test_costs_match_direct_experiments(self):
        """The serve layer's twin of the cycle-level experiment: the µs
        costs it charges are exactly the mean latency/resume of direct
        ``run_preemption_experiment`` runs over the same signal points."""
        config = GPUConfig.small(4)
        key, iterations, samples = "mm", 6, 2
        costs = mechanism_costs(
            ("ctxback",), key, config, iterations=iterations, samples=samples
        )["ctxback"]

        points = _signal_points(key, config, samples, iterations)
        launch = _launch(key, config, iterations)
        prepared = prepared_for(key, "ctxback", config, iterations)
        latencies, resumes = [], []
        for point in points:
            result = run_preemption_experiment(
                launch.spec(),
                prepared,
                config,
                signal_dyn=point,
                resume_gap=2000,
                verify=False,
            )
            latencies.append(result.mean_latency)
            if result.mean_resume is not None:
                resumes.append(result.mean_resume)
        assert costs.preempt_us == pytest.approx(
            config.cycles_to_us(sum(latencies) / len(latencies))
        )
        assert costs.resume_us == pytest.approx(
            config.cycles_to_us(sum(resumes) / len(resumes))
        )

    def test_tenant_mix_validation(self):
        with pytest.raises(ValueError):
            Tenant("bad", priority=1, service_us=0.0, slo_us=1.0, weight=1.0)
        with pytest.raises(ValueError):
            Tenant("bad", priority=1, service_us=1.0, slo_us=1.0, weight=0.0)
        assert mean_service_us(DEFAULT_TENANTS) == pytest.approx(
            0.5 * 40 + 0.3 * 80 + 0.2 * 160
        )


# -- serving under concurrent GPU failure ------------------------------------------
#
# The fleet planner re-queues a dead GPU's requests onto survivors; these
# tests drive the planned shards through the resilient scheduler and check
# the serving-level invariants: every request completes or sheds exactly
# once (never twice, never silently), and a re-queued request's latency
# keeps counting from its ORIGINAL arrival — the failover delay is charged
# to the tail, not hidden.


class TestServeUnderFailure:
    KNOBS = ResilienceKnobs(detect_us=500.0, ckpt_cadence_us=1000.0)
    MIG = MigrationCosts(snapshot_us=40.0, transfer_us=100.0, restore_us=20.0)

    def _simulate(self, schedule):
        shards = [
            ((0.0, 0), (150.0, 0), (2600.0, 0)),  # gpu0: rids 0, 2, 4
            ((10.0, 0), (160.0, 0)),              # gpu1: rids 1, 3
        ]
        plan = plan_resilience(
            shards, SINGLE_TENANT, MechanismCosts("x", 0.0, 0.0),
            schedule, self.MIG, knobs=self.KNOBS,
        )
        results = [
            simulate_resilient_shard(
                plan.streams[g], SINGLE_TENANT,
                MechanismCosts("x", 0.0, 0.0), gpu=g,
                crash_at=plan.crash_at[g], ops=plan.ops[g],
                ckpt_cadence_us=self.KNOBS.ckpt_cadence_us,
            )
            for g in range(2)
        ]
        return plan, results

    def test_crash_requeue_completes_every_request_exactly_once(self):
        plan, results = self._simulate((FleetEvent("gpu_crash", 200.0, 0),))
        completed = [rid for r in results for _, _, rid in r.latencies]
        shed = [rid for r in results for _, rid, _ in r.shed]
        assert sorted(completed) == sorted(set(completed))  # no duplicates
        assert sorted(completed + shed) == [0, 1, 2, 3, 4]
        # gpu0 finished rid 0 before dying; rids 2 and 4 moved to gpu1
        assert [rid for _, _, rid in results[0].latencies] == [0]
        assert plan.crash_at == [200.0, None]

    def test_requeued_latency_counts_from_original_arrival(self):
        _, results = self._simulate((FleetEvent("gpu_crash", 200.0, 0),))
        survivor = {rid: lat for _, lat, rid in results[1].latencies}
        # rid 2 arrived at 150, died with gpu0 at 200, and could not even
        # re-arrive before 200 + detect: its latency includes the failover
        # gap on top of service, measured from the 150 µs arrival
        assert survivor[2] >= (200.0 + 500.0 - 150.0) + 100.0
        # rid 4 arrived after the crash and was redirected on arrival: it
        # pays the detection delay, not the service backlog of the dead GPU
        assert survivor[4] < survivor[2]

    def test_no_fleet_events_means_byte_identical_plain_serve(self):
        # zero-overhead guard at the scheduler level: an empty schedule
        # must reproduce the plain scheduler's accounting exactly
        plan, results = self._simulate(())
        assert not plan.failovers
        for g, shard in enumerate(
            [((0.0, 0), (150.0, 0), (2600.0, 0)), ((10.0, 0), (160.0, 0))]
        ):
            plain = simulate_shard(shard, SINGLE_TENANT,
                                   MechanismCosts("x", 0.0, 0.0))
            assert [lat for _, lat, _ in results[g].latencies] == [
                lat for _, lat in plain.latencies
            ]
            assert results[g].overhead_us == plain.overhead_us
