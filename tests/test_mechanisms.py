"""The six mechanisms' compiler sides: plan structure and invariants."""

import pytest

from repro.ctxback import META_BYTES, baseline_context_bytes, live_context_bytes_at
from repro.mechanisms import ALL_MECHANISMS, make_mechanism


@pytest.fixture(params=["baseline", "live", "csdefer", "ctxback", "combined"])
def routine_prepared(request, loop_kernel, small_config):
    return make_mechanism(request.param).prepare(loop_kernel, small_config)


class TestRegistry:
    def test_all_names(self):
        assert set(ALL_MECHANISMS) == {
            "baseline", "live", "ckpt", "csdefer", "ctxback", "combined",
        }

    def test_make_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            make_mechanism("nope")

    def test_instances_carry_name(self):
        for name in ALL_MECHANISMS:
            assert make_mechanism(name).name == name


class TestPlanInvariants:
    def test_plan_for_every_position(self, routine_prepared):
        n = len(routine_prepared.kernel.program.instructions)
        assert set(routine_prepared.plans) == set(range(n))

    def test_resume_pc_in_program(self, routine_prepared):
        n = len(routine_prepared.kernel.program.instructions)
        for plan in routine_prepared.plans.values():
            assert 0 <= plan.resume_pc < n

    def test_context_includes_meta(self, routine_prepared):
        for plan in routine_prepared.plans.values():
            assert plan.context_bytes >= META_BYTES

    def test_routines_are_straight_line(self, routine_prepared):
        for plan in routine_prepared.plans.values():
            for instruction in plan.preempt_routine.instructions:
                assert not instruction.spec.is_branch
            for instruction in plan.resume_routine.instructions:
                assert not instruction.spec.is_branch


class TestBaseline:
    def test_context_is_full_allocation(self, loop_kernel, small_config):
        prepared = make_mechanism("baseline").prepare(loop_kernel, small_config)
        expected = baseline_context_bytes(loop_kernel, small_config.rf_spec)
        assert all(
            plan.context_bytes == expected for plan in prepared.plans.values()
        )

    def test_position_independent(self, loop_kernel, small_config):
        prepared = make_mechanism("baseline").prepare(loop_kernel, small_config)
        sizes = {plan.context_bytes for plan in prepared.plans.values()}
        assert len(sizes) == 1

    def test_routines_shared_across_positions(self, loop_kernel, small_config):
        prepared = make_mechanism("baseline").prepare(loop_kernel, small_config)
        routines = {id(plan.preempt_routine) for plan in prepared.plans.values()}
        assert len(routines) == 1


class TestLive:
    def test_matches_live_context_accounting(self, loop_kernel, small_config):
        prepared = make_mechanism("live").prepare(loop_kernel, small_config)
        for n, plan in prepared.plans.items():
            assert plan.context_bytes == live_context_bytes_at(
                loop_kernel, n, small_config.rf_spec
            )

    def test_never_exceeds_baseline(self, loop_kernel, small_config):
        base = baseline_context_bytes(loop_kernel, small_config.rf_spec)
        prepared = make_mechanism("live").prepare(loop_kernel, small_config)
        assert all(plan.context_bytes <= base for plan in prepared.plans.values())


class TestCsDefer:
    def test_defers_within_block(self, loop_kernel, small_config):
        from repro.compiler import build_cfg

        prepared = make_mechanism("csdefer").prepare(loop_kernel, small_config)
        cfg = build_cfg(loop_kernel.program)
        for n, plan in prepared.plans.items():
            block = cfg.block_at(n)
            assert n <= plan.resume_pc < block.end

    def test_never_defers_across_terminator(self, loop_kernel, small_config):
        prepared = make_mechanism("csdefer").prepare(loop_kernel, small_config)
        for n, plan in prepared.plans.items():
            target = plan.resume_pc
            window = loop_kernel.program.instructions[n:target]
            assert not any(i.spec.is_branch for i in window)

    def test_prefix_matches_deferred_window(self, loop_kernel, small_config):
        prepared = make_mechanism("csdefer").prepare(loop_kernel, small_config)
        for n, plan in prepared.plans.items():
            window = plan.resume_pc - n
            prefix = plan.preempt_routine.instructions[:window]
            assert prefix == list(loop_kernel.program.instructions[n : n + window])


class TestCtxBack:
    def test_never_worse_than_live(self, loop_kernel, small_config):
        ctx = make_mechanism("ctxback").prepare(loop_kernel, small_config)
        for n, plan in ctx.plans.items():
            live_bytes = live_context_bytes_at(
                ctx.kernel, n, small_config.rf_spec
            )
            assert plan.context_bytes <= live_bytes, n

    def test_flashback_not_after_signal(self, loop_kernel, small_config):
        prepared = make_mechanism("ctxback").prepare(loop_kernel, small_config)
        for n, plan in prepared.plans.items():
            assert plan.flashback_pos is not None and plan.flashback_pos <= n

    def test_resume_pc_is_signal_position(self, loop_kernel, small_config):
        prepared = make_mechanism("ctxback").prepare(loop_kernel, small_config)
        assert all(plan.resume_pc == n for n, plan in prepared.plans.items())


class TestCombined:
    def test_picks_elementwise_best_estimate(self, loop_kernel, small_config):
        combined = make_mechanism("combined").prepare(loop_kernel, small_config)
        ctx = make_mechanism("ctxback").prepare(loop_kernel, small_config)
        defer = make_mechanism("csdefer").prepare(ctx.kernel, small_config)
        for n, plan in combined.plans.items():
            best = min(
                ctx.plans[n].est_preempt_cycles, defer.plans[n].est_preempt_cycles
            )
            assert plan.est_preempt_cycles == best

    def test_mechanism_labels_preserved(self, loop_kernel, small_config):
        combined = make_mechanism("combined").prepare(loop_kernel, small_config)
        labels = {plan.mechanism for plan in combined.plans.values()}
        assert labels <= {"ctxback", "csdefer"}


class TestCkpt:
    def test_probe_per_block(self, loop_kernel, small_config):
        from repro.compiler import build_cfg

        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        cfg = build_cfg(loop_kernel.program)
        nonempty = [b for b in cfg.blocks if len(b)]
        assert len(prepared.ckpt_sites) == len(nonempty)

    def test_probe_at_min_live_position(self, loop_kernel, small_config):
        from repro.compiler import analyze_liveness, build_cfg
        from repro.ctxback import regs_bytes

        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        liveness = analyze_liveness(loop_kernel.program)
        cfg = build_cfg(loop_kernel.program)
        for site in prepared.ckpt_sites.values():
            block = cfg.blocks[site.probe_id]
            best = min(
                regs_bytes(liveness.live_in[pos], small_config.rf_spec)
                for pos in block.positions()
            )
            assert regs_bytes(site.live_regs, small_config.rf_spec) == best

    def test_is_checkpoint_based(self, loop_kernel, small_config):
        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        assert prepared.is_checkpoint_based
        assert prepared.plans == {}

    def test_instrumented_program_has_probes(self, loop_kernel, small_config):
        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        probes = [
            i
            for i in prepared.kernel.program.instructions
            if i.mnemonic == "ckpt_probe"
        ]
        assert len(probes) == len(prepared.ckpt_sites)


class TestStaticStats:
    def test_context_bytes_by_position(self, loop_kernel, small_config):
        prepared = make_mechanism("live").prepare(loop_kernel, small_config)
        sizes = prepared.context_bytes_by_position()
        assert len(sizes) == len(loop_kernel.program.instructions)
        assert prepared.mean_context_bytes() == pytest.approx(
            sum(sizes) / len(sizes)
        )

    def test_ckpt_stats_use_checkpoint_size(self, loop_kernel, small_config):
        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        assert prepared.mean_context_bytes() > 0
