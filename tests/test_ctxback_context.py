"""Context-size accounting: bytes, baselines, profiles."""

from repro.ctxback import (
    META_BYTES,
    baseline_context_bytes,
    lds_share_bytes,
    live_context_bytes_at,
    min_live_context,
    profile_kernel_contexts,
    regs_bytes,
)
from repro.isa import EXEC, Kernel, RegisterFileSpec, parse, sreg, vreg


def _kernel(src, vgprs=8, sgprs=8, lds=0, warps=4):
    return Kernel(
        "k", parse(src), vgprs_used=vgprs, sgprs_used=sgprs, lds_bytes=lds,
        warps_per_block=warps,
    )


SPEC = RegisterFileSpec(warp_size=4)


class TestRegBytes:
    def test_mixed_set(self):
        assert regs_bytes([vreg(0), sreg(1), EXEC], SPEC) == 16 + 4 + 8

    def test_empty(self):
        assert regs_bytes([], SPEC) == 0


class TestLdsShare:
    def test_per_warp_semantics(self):
        # Table I semantics: lds_bytes is already the per-warp share
        k = _kernel("s_endpgm", lds=1024, warps=4)
        assert lds_share_bytes(k) == 1024

    def test_zero(self):
        assert lds_share_bytes(_kernel("s_endpgm")) == 0


class TestBaseline:
    def test_counts_aligned_allocation(self):
        k = _kernel("v_add v5, v1, v2\ns_endpgm", vgprs=6, sgprs=3)
        # 6 vgprs -> 8 aligned; 3 sgprs -> 16 aligned; + exec/scc + meta
        expected = 8 * 16 + 16 * 4 + 12 + META_BYTES
        assert baseline_context_bytes(k, SPEC) == expected

    def test_includes_lds_and_meta(self):
        with_lds = _kernel("s_endpgm", vgprs=4, lds=256)
        without = _kernel("s_endpgm", vgprs=4)
        delta = baseline_context_bytes(with_lds, SPEC) - baseline_context_bytes(
            without, SPEC
        )
        assert delta == 256


class TestLiveContext:
    SRC = """
        v_add v1, v2, v3
        global_store v4, v1, 0
        s_endpgm
    """

    def test_live_smaller_than_baseline(self):
        k = _kernel(self.SRC)
        assert live_context_bytes_at(k, 0, SPEC) < baseline_context_bytes(k, SPEC)

    def test_counts_exec(self):
        k = _kernel(self.SRC)
        # v2,v3,v4 live + exec + meta at position 0
        assert live_context_bytes_at(k, 0, SPEC) == 3 * 16 + 8 + META_BYTES

    def test_profile_shape(self):
        k = _kernel(self.SRC)
        profile = profile_kernel_contexts(k, SPEC)
        assert len(profile.live_bytes) == 3
        assert profile.min_live_bytes <= profile.mean_live_bytes <= profile.max_live_bytes
        assert profile.baseline_bytes == baseline_context_bytes(k, SPEC)

    def test_min_live_context_position(self):
        k = _kernel(self.SRC)
        pos, nbytes = min_live_context(k, SPEC)
        # nothing is live at s_endpgm
        assert pos == 2
        assert nbytes == META_BYTES
