"""Register model: naming, interning, context bytes, allocation alignment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    EXEC,
    PC,
    SCC,
    Reg,
    RegisterFileSpec,
    RegKind,
    is_reg_name,
    parse_reg,
    sreg,
    vreg,
)


class TestReg:
    def test_scalar_str(self):
        assert str(sreg(3)) == "s3"

    def test_vector_str(self):
        assert str(vreg(17)) == "v17"

    def test_special_names(self):
        assert str(EXEC) == "exec"
        assert str(SCC) == "scc"
        assert str(PC) == "pc"

    def test_interning(self):
        assert sreg(5) is sreg(5)
        assert vreg(5) is vreg(5)
        assert sreg(5) is not vreg(5)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Reg(RegKind.SCALAR, -1)

    def test_kind_predicates(self):
        assert sreg(0).is_scalar and not sreg(0).is_vector
        assert vreg(0).is_vector and not vreg(0).is_scalar
        assert EXEC.is_special

    def test_ordering_is_total(self):
        regs = [vreg(2), sreg(9), vreg(0), EXEC]
        assert sorted(regs) == sorted(regs, key=lambda r: (r.kind.value, r.index))


class TestContextBytes:
    def test_vector_scales_with_warp(self):
        assert vreg(0).context_bytes(64) == 256
        assert vreg(0).context_bytes(4) == 16

    def test_scalar_is_four_bytes(self):
        assert sreg(0).context_bytes(64) == 4

    def test_exec_is_eight_bytes(self):
        assert EXEC.context_bytes(64) == 8

    def test_scc_is_four_bytes(self):
        assert SCC.context_bytes(64) == 4


class TestParseReg:
    @pytest.mark.parametrize(
        "text,expected",
        [("v0", vreg(0)), ("s12", sreg(12)), ("V3", vreg(3)), ("exec", EXEC), ("scc", SCC)],
    )
    def test_parse(self, text, expected):
        assert parse_reg(text) == expected

    @pytest.mark.parametrize("text", ["x1", "v", "s-1", "vv1", "", "v1x"])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            parse_reg(text)

    def test_is_reg_name(self):
        assert is_reg_name("v7") and not is_reg_name("LOOP")

    @given(st.integers(min_value=0, max_value=1000))
    def test_roundtrip_vector(self, index):
        assert parse_reg(str(vreg(index))) == vreg(index)

    @given(st.integers(min_value=0, max_value=1000))
    def test_roundtrip_scalar(self, index):
        assert parse_reg(str(sreg(index))) == sreg(index)


class TestRegisterFileSpec:
    def test_vega_defaults(self):
        spec = RegisterFileSpec()
        assert spec.warp_size == 64
        assert spec.vgpr_bytes_per_sm == 256 * 1024
        assert spec.lds_bytes_per_sm == 64 * 1024

    def test_vgpr_alignment_groups_of_four(self):
        spec = RegisterFileSpec()
        assert spec.allocated_vgprs(1) == 4
        assert spec.allocated_vgprs(4) == 4
        assert spec.allocated_vgprs(5) == 8
        assert spec.allocated_vgprs(0) == 0

    def test_sgpr_alignment_groups_of_sixteen(self):
        spec = RegisterFileSpec()
        assert spec.allocated_sgprs(1) == 16
        assert spec.allocated_sgprs(16) == 16
        assert spec.allocated_sgprs(17) == 32

    def test_negative_usage_rejected(self):
        spec = RegisterFileSpec()
        with pytest.raises(ValueError):
            spec.allocated_vgprs(-1)
        with pytest.raises(ValueError):
            spec.allocated_sgprs(-2)

    def test_warp_context_includes_padding(self):
        spec = RegisterFileSpec(warp_size=64)
        # 5 vgprs used -> 8 allocated; 1 sgpr used -> 16 allocated
        expected = 8 * 256 + 16 * 4
        assert spec.warp_context_bytes(5, 1) == expected

    def test_warp_context_includes_lds(self):
        spec = RegisterFileSpec(warp_size=64)
        assert (
            spec.warp_context_bytes(4, 16, lds_bytes=512)
            - spec.warp_context_bytes(4, 16)
            == 512
        )

    def test_live_context_bytes(self):
        spec = RegisterFileSpec(warp_size=4)
        regs = [vreg(0), sreg(1), EXEC]
        assert spec.live_context_bytes(regs) == 16 + 4 + 8

    def test_zero_warp_size_rejected(self):
        with pytest.raises(ValueError):
            RegisterFileSpec(warp_size=0)

    @given(st.integers(min_value=0, max_value=512))
    def test_allocation_monotone_and_covering(self, used):
        spec = RegisterFileSpec()
        allocated = spec.allocated_vgprs(used)
        assert allocated >= used
        assert allocated % spec.vgpr_align == 0
        assert allocated - used < spec.vgpr_align
