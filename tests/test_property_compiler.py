"""Property-based cross-checks of the compiler analyses.

Liveness is validated against an independent brute-force definition; value
numbering against a concrete interpreter of register states.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import analyze_liveness, number_region
from repro.isa import Imm, Instruction, inst, vreg
from repro.isa.instruction import Program

REGS = list(range(6))

_BINARY = ["v_add", "v_sub", "v_mul", "v_xor", "v_and", "v_or", "v_min", "v_max"]


@st.composite
def straight_line_programs(draw):
    length = draw(st.integers(1, 20))
    body = []
    for _ in range(length):
        dst = vreg(draw(st.sampled_from(REGS)))
        if draw(st.booleans()):
            a = vreg(draw(st.sampled_from(REGS)))
            b = (
                vreg(draw(st.sampled_from(REGS)))
                if draw(st.booleans())
                else Imm(draw(st.integers(0, 255)))
            )
            body.append(inst(draw(st.sampled_from(_BINARY)), dst, a, b))
        else:
            src = (
                vreg(draw(st.sampled_from(REGS)))
                if draw(st.booleans())
                else Imm(draw(st.integers(0, 255)))
            )
            body.append(inst("v_mov", dst, src))
    body.append(inst("s_endpgm"))
    return Program(body)


def brute_force_live_in(program, position):
    """A register is live-in at *position* iff some later instruction reads
    it before any later instruction writes it (straight-line definition)."""
    live = set()
    candidates = set()
    for instruction in program.instructions:
        candidates.update(instruction.uses())
    for reg in candidates:
        for instruction in program.instructions[position:]:
            if reg in instruction.uses():
                live.add(reg)
                break
            if reg in instruction.defs():
                break
    return live


@settings(max_examples=150, deadline=None)
@given(program=straight_line_programs())
def test_liveness_matches_brute_force(program):
    liveness = analyze_liveness(program)
    for position in range(len(program.instructions)):
        assert set(liveness.live_in[position]) == brute_force_live_in(
            program, position
        ), position


@settings(max_examples=150, deadline=None)
@given(program=straight_line_programs())
def test_value_numbering_matches_symbolic_interpreter(program):
    """Interpreting the region with value tokens reproduces use/def values."""
    region = number_region(program, 0, len(program.instructions))
    state = dict(region.entry)
    for position, instruction in enumerate(program.instructions):
        expected_uses = tuple(
            state.setdefault(reg, region.entry[reg]) for reg in instruction.uses()
        )
        assert region.use_values_at(position) == expected_uses, position
        for reg, value in zip(instruction.defs(), region.def_values_at(position)):
            state[reg] = value
    # end state agrees with the interpreter
    for reg, value in region.end_state.items():
        assert state[reg] is value


@settings(max_examples=100, deadline=None)
@given(program=straight_line_programs())
def test_every_value_killed_at_most_once_per_position(program):
    region = number_region(program, 0, len(program.instructions))
    for value, kills in region.kills_of.items():
        positions = [(kill.pos, kill.slot) for kill in kills]
        assert len(positions) == len(set(positions)), value
        for kill in kills:
            # the killed value really was the pre-state of that destination
            assert region.pre_def_values_at(kill.pos)[kill.slot] is value
