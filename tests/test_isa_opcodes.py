"""Opcode table integrity and reversibility metadata."""

import pytest

from repro.isa import OPCODES, MemKind, OpClass, ReversibilityModel, opspec


class TestTableIntegrity:
    def test_lookup_known(self):
        assert opspec("v_add").opclass is OpClass.VALU
        assert opspec("s_add").opclass is OpClass.SALU

    def test_lookup_unknown_raises_keyerror_with_name(self):
        with pytest.raises(KeyError, match="v_bogus"):
            opspec("v_bogus")

    def test_every_vector_alu_reads_exec(self):
        for name, spec in OPCODES.items():
            if spec.opclass is OpClass.VALU:
                assert spec.reads_exec, name

    def test_scalar_alu_never_reads_exec(self):
        for name, spec in OPCODES.items():
            if spec.opclass is OpClass.SALU:
                assert not spec.reads_exec, name

    def test_compares_write_scc(self):
        for cc in ("lt", "le", "eq", "ne", "gt", "ge"):
            assert opspec(f"s_cmp_{cc}").writes_scc

    def test_conditional_branches_read_scc(self):
        assert opspec("s_cbranch_scc1").reads_scc
        assert opspec("s_cbranch_scc0").reads_scc
        assert not opspec("s_branch").reads_scc

    def test_terminators(self):
        for name in ("s_branch", "s_cbranch_scc0", "s_cbranch_scc1", "s_endpgm"):
            assert opspec(name).is_terminator, name
        assert not opspec("v_add").is_terminator

    def test_memory_classification(self):
        assert opspec("global_load").is_load
        assert opspec("global_store").is_store
        assert opspec("lds_read").is_load
        assert opspec("lds_write").is_store
        assert opspec("ctx_store_v").is_store
        assert opspec("ctx_load_v").is_load

    def test_lds_does_not_touch_global_memory(self):
        assert not opspec("lds_read").touches_global_memory
        assert not opspec("lds_write").touches_global_memory
        assert opspec("ctx_store_v").touches_global_memory

    def test_scalar_vector_variants_paired(self):
        for base in ("add", "sub", "mul", "xor", "and", "or", "mov", "lshl"):
            assert f"s_{base}" in OPCODES and f"v_{base}" in OPCODES

    def test_operand_counts_sane(self):
        for name, spec in OPCODES.items():
            assert spec.n_dst >= 0 and spec.n_src >= 0, name
            if spec.opclass in (OpClass.SALU, OpClass.VALU):
                assert spec.n_dst == 1 or name.startswith("s_cmp"), name


class TestRevertSpecs:
    def test_add_reversible_both_positions(self):
        spec = opspec("v_add")
        assert set(spec.revert) == {0, 1}
        assert spec.revert[0].inv_mnemonic == "v_sub"

    def test_sub_reversible_with_asymmetric_patterns(self):
        spec = opspec("v_sub")
        assert spec.revert[0].pattern == ("new", "other")  # a = r' + b
        assert spec.revert[0].inv_mnemonic == "v_add"
        assert spec.revert[1].pattern == ("other", "new")  # b = a - r'
        assert spec.revert[1].inv_mnemonic == "v_sub"

    def test_xor_self_inverse(self):
        spec = opspec("v_xor")
        assert spec.revert[0].inv_mnemonic == "v_xor"

    def test_not_unary_inverse(self):
        spec = opspec("v_not")
        assert spec.revert[0].pattern == ("new",)

    def test_mul_not_reversible(self):
        assert not opspec("v_mul").revert

    def test_float_ops_never_reversible(self):
        for base in ("addf", "subf", "mulf", "madf"):
            assert not opspec(f"v_{base}").revert, base

    def test_lshl_paper_only(self):
        spec = opspec("v_lshl")
        assert spec.revert[0].paper_only
        assert spec.revert[0].inv_mnemonic == "v_lshr"

    def test_scalar_inverse_stays_scalar(self):
        assert opspec("s_add").revert[0].inv_mnemonic == "s_sub"

    def test_inverse_mnemonics_exist(self):
        for name, spec in OPCODES.items():
            for rev in spec.revert.values():
                assert rev.inv_mnemonic in OPCODES, name


class TestReversibilityModel:
    def test_exact_rejects_paper_only(self):
        rule = opspec("v_lshl").revert[0]
        assert not ReversibilityModel.EXACT.allows(rule)
        assert ReversibilityModel.PAPER.allows(rule)

    def test_both_allow_exact_rules(self):
        rule = opspec("v_add").revert[0]
        assert ReversibilityModel.EXACT.allows(rule)
        assert ReversibilityModel.PAPER.allows(rule)
