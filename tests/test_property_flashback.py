"""Property-based validation of the whole CTXBack pipeline.

For *arbitrary* straight-line integer programs, arbitrary initial register
values and an arbitrary preemption point, running the generated preemption
routine, clearing the register file, running the resuming routine and
finishing the program must produce exactly the memory image of an
uninterrupted run.  The reversibility model is EXACT, so every inversion the
analysis chooses is bit-exact by construction.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctxback import CtxBackConfig, FlashbackAnalyzer, live_context_bytes_at
from repro.isa import (
    Imm,
    Instruction,
    Kernel,
    Program,
    ReversibilityModel,
    inst,
    vreg,
)
from repro.mechanisms.ctxback import CtxBack
from repro.sim import GPUConfig, LaunchSpec, run_preemption_experiment

WARP = 4
CONFIG = GPUConfig.small(warp_size=WARP)
ANALYSIS = CtxBackConfig(
    rf_spec=CONFIG.rf_spec, reversibility=ReversibilityModel.EXACT
)

DATA_REGS = list(range(6))  # v0..v5 hold data; v6 is the output pointer
OUT_PTR = 6
OUT_BASE = 0x4000

_BINARY = ["v_add", "v_sub", "v_mul", "v_xor", "v_and", "v_or", "v_min", "v_max"]


@st.composite
def random_body(draw):
    """A straight-line all-integer instruction sequence over v0..v5."""
    length = draw(st.integers(1, 16))
    body = []
    for _ in range(length):
        kind = draw(st.integers(0, 3))
        dst = vreg(draw(st.sampled_from(DATA_REGS)))
        if kind == 0:  # binary reg/reg or reg/imm
            mnemonic = draw(st.sampled_from(_BINARY))
            a = vreg(draw(st.sampled_from(DATA_REGS)))
            b = (
                vreg(draw(st.sampled_from(DATA_REGS)))
                if draw(st.booleans())
                else Imm(draw(st.integers(0, 0xFFFF)))
            )
            body.append(inst(mnemonic, dst, a, b))
        elif kind == 1:  # move (reg copy or materialized constant)
            src = (
                vreg(draw(st.sampled_from(DATA_REGS)))
                if draw(st.booleans())
                else Imm(draw(st.integers(0, 0xFFFFFFFF)))
            )
            body.append(inst("v_mov", dst, src))
        elif kind == 2:  # three-operand mad
            a, b, c = (vreg(draw(st.sampled_from(DATA_REGS))) for _ in range(3))
            body.append(inst("v_mad", dst, a, b, c))
        else:  # unary not
            body.append(inst("v_not", dst, vreg(draw(st.sampled_from(DATA_REGS)))))
    return body


def build_kernel(body) -> Kernel:
    program = Program(list(body))
    for index, reg in enumerate(DATA_REGS):
        program.append(
            inst("global_store", vreg(OUT_PTR), vreg(reg), index * WARP * 4)
        )
    program.append(inst("s_endpgm"))
    return Kernel("prop", program, vgprs_used=8, sgprs_used=8, noalias=True)


def launch_for(kernel, init_values) -> LaunchSpec:
    def setup_memory(memory):
        pass

    def setup_warp(state, index):
        for reg, lanes in zip(DATA_REGS, init_values):
            state.vregs[reg, :] = np.array(lanes, dtype=np.uint32)
        state.vregs[OUT_PTR, :] = OUT_BASE + 4 * np.arange(WARP, dtype=np.uint32)

    return LaunchSpec(
        kernel=kernel, setup_memory=setup_memory, setup_warp=setup_warp,
        num_warps=1,
    )


lanes = st.lists(
    st.integers(0, 0xFFFFFFFF), min_size=WARP, max_size=WARP
)
init_values_strategy = st.lists(lanes, min_size=len(DATA_REGS), max_size=len(DATA_REGS))


@settings(max_examples=60, deadline=None)
@given(body=random_body(), init_values=init_values_strategy, seed=st.integers(0, 1 << 30))
def test_preempt_resume_roundtrip_anywhere(body, init_values, seed):
    kernel = build_kernel(body)
    position = seed % len(kernel.program.instructions)
    prepared = CtxBack(ANALYSIS).prepare(kernel, CONFIG)
    result = run_preemption_experiment(
        launch_for(kernel, init_values),
        prepared,
        CONFIG,
        signal_dyn=position,
        resume_gap=64,
    )
    assert result.verified


@settings(max_examples=40, deadline=None)
@given(body=random_body())
def test_plan_never_exceeds_live_context(body):
    kernel = build_kernel(body)
    analyzer = FlashbackAnalyzer(kernel, ANALYSIS)
    for position in range(0, len(kernel.program.instructions), 3):
        plan = analyzer.plan_at(position)
        assert plan.context_bytes <= live_context_bytes_at(
            kernel, position, CONFIG.rf_spec
        )
        assert plan.flashback_pos <= position


@settings(max_examples=30, deadline=None)
@given(body=random_body(), init_values=init_values_strategy)
def test_all_positions_roundtrip_small(body, init_values):
    """Exhaustive positions for short bodies (≤ 8 instructions)."""
    if len(body) > 8:
        body = body[:8]
    kernel = build_kernel(body)
    prepared = CtxBack(ANALYSIS).prepare(kernel, CONFIG)
    launch = launch_for(kernel, init_values)
    for position in range(len(kernel.program.instructions)):
        result = run_preemption_experiment(
            launch, prepared, CONFIG, signal_dyn=position, resume_gap=16
        )
        assert result.verified, position
