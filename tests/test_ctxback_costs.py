"""Cost estimates and the kernel builder's shared infrastructure."""

import numpy as np
import pytest

from repro.ctxback.costs import (
    Cost,
    ZERO_COST,
    est_exec_window_cycles,
    est_issue_cycles,
    est_preempt_latency,
)
from repro.isa import inst, vreg, sreg
from repro.kernels.builder import (
    KernelBuilder,
    StandardLaunch,
    fbits,
    input_pattern,
)


class TestCost:
    def test_lexicographic_ordering(self):
        assert Cost(1, 100.0) < Cost(2, 1.0)
        assert Cost(1, 1.0) < Cost(1, 2.0)

    def test_addition(self):
        assert Cost(1, 2.0) + Cost(3, 4.0) == Cost(4, 6.0)
        assert ZERO_COST + Cost(5, 5.0) == Cost(5, 5.0)


class TestEstimates:
    def test_issue_cycles_by_class(self):
        assert est_issue_cycles(inst("s_nop")) == 1.0
        assert est_issue_cycles(inst("v_add", vreg(0), vreg(1), 2)) == 4.0
        assert est_issue_cycles(inst("global_load", vreg(0), vreg(1), 0)) == 16.0

    def test_window_sums_issue_estimates(self):
        window = [inst("s_nop"), inst("v_add", vreg(0), vreg(1), 2)]
        assert est_exec_window_cycles(window) == 5.0

    def test_preempt_latency_monotone_in_bytes(self):
        assert est_preempt_latency(1024) > est_preempt_latency(512)
        assert est_preempt_latency(0, extra_cycles=7.0) == 7.0

    def test_estimates_ignore_memory_stalls(self):
        """The deliberate §V-B underestimation: a load's estimate is far
        below its actual service latency."""
        from repro.sim import GPUConfig

        config = GPUConfig.radeon_vii()
        assert est_issue_cycles(inst("global_load", vreg(0), vreg(1), 0)) < (
            config.mem_latency / 4
        )


class TestBuilderHelpers:
    def test_fbits_roundtrip(self):
        assert np.uint32(fbits(1.5)).view(np.float32) == np.float32(1.5)

    def test_input_pattern_deterministic_and_seeded(self):
        a = input_pattern(64, seed=1)
        b = input_pattern(64, seed=1)
        c = input_pattern(64, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_input_pattern_is_finite_float32(self):
        values = input_pattern(256, seed=3).view(np.float32)
        assert np.isfinite(values).all()

    def test_builder_fragments(self):
        builder = KernelBuilder(
            "t", abbrev="T", provenance="test", vgprs=8, sgprs=8
        )
        builder.lane_byte_offset(vreg(1))
        builder.pointer(vreg(2), vreg(1), sreg(0))
        builder.loop_begin()
        builder.i("v_add", vreg(2), vreg(2), sreg(4))
        builder.loop_end()
        builder.end()
        kernel = builder.build()
        assert "LOOP" in kernel.program.labels
        assert kernel.program.instructions[-1].mnemonic == "s_endpgm"

    def test_standard_launch_abi(self, small_config):
        from repro.kernels import SUITE
        from repro.sim import DeviceMemory, WarpState

        launch = SUITE["va"].launch(warp_size=4, iterations=4, num_warps=2)
        spec = launch.spec()
        memory = DeviceMemory()
        spec.setup_memory(memory)
        state = WarpState(num_vregs=16, num_sregs=16, warp_size=4)
        spec.setup_warp(state, 1)
        assert state.sregs[3] == 4  # iterations
        assert state.sregs[4] == launch.stride_bytes(4)
        assert list(state.vregs[0]) == [0, 1, 2, 3]
        # warp 1's buffers are disjoint from warp 0's
        state0 = WarpState(num_vregs=16, num_sregs=16, warp_size=4)
        spec.setup_warp(state0, 0)
        assert state.sregs[0] != state0.sregs[0]
        assert state.sregs[2] != state0.sregs[2]
