"""Device memory (functional) and the bandwidth/latency pipeline (timing)."""

import numpy as np
import pytest

from repro.sim import DeviceMemory, MemoryPipeline


class TestDeviceMemory:
    def test_unwritten_reads_zero(self):
        assert DeviceMemory(1 << 12).load_word(0x100) == 0

    def test_store_load_roundtrip(self):
        memory = DeviceMemory(1 << 12)
        memory.store_word(0x10, 0xDEADBEEF)
        assert memory.load_word(0x10) == 0xDEADBEEF

    def test_values_wrap_32_bits(self):
        memory = DeviceMemory(1 << 12)
        memory.store_word(0, 0x1_0000_0002)
        assert memory.load_word(0) == 2

    def test_unaligned_rejected(self):
        memory = DeviceMemory(1 << 12)
        with pytest.raises(ValueError, match="unaligned"):
            memory.load_word(0x3)

    def test_out_of_range_rejected(self):
        memory = DeviceMemory(1 << 12)
        with pytest.raises(ValueError):
            memory.store_word(1 << 13, 1)

    def test_array_roundtrip(self):
        memory = DeviceMemory(1 << 12)
        data = np.arange(16, dtype=np.uint32)
        memory.store_array(0x40, data)
        assert np.array_equal(memory.load_array(0x40, 16), data)

    def test_gather_respects_mask(self):
        memory = DeviceMemory(1 << 12)
        memory.store_array(0, np.array([10, 20, 30, 40], dtype=np.uint32))
        addrs = np.array([0, 4, 8, 12], dtype=np.uint64)
        mask = np.array([True, False, True, False])
        out = memory.gather(addrs, mask)
        assert list(out) == [10, 0, 30, 0]

    def test_scatter_respects_mask(self):
        memory = DeviceMemory(1 << 12)
        addrs = np.array([0, 4], dtype=np.uint64)
        memory.scatter(addrs, np.array([7, 8], dtype=np.uint64),
                       np.array([True, False]))
        assert memory.load_word(0) == 7 and memory.load_word(4) == 0

    def test_gather_out_of_range_rejected(self):
        memory = DeviceMemory(1 << 12)
        with pytest.raises(ValueError):
            memory.gather(np.array([1 << 20], dtype=np.uint64), np.array([True]))

    def test_equality_semantics(self):
        a, b = DeviceMemory(1 << 12), DeviceMemory(1 << 12)
        assert a == b
        a.store_word(0, 1)
        assert a != b
        b.store_word(0, 1)
        assert a == b

    def test_equality_across_sizes_ignores_zero_tail(self):
        a, b = DeviceMemory(1 << 12), DeviceMemory(1 << 13)
        assert a == b
        b.store_word(1 << 12, 5)  # beyond a's range
        assert a != b


class TestMemoryPipeline:
    def test_completion_includes_latency(self):
        pipe = MemoryPipeline(bytes_per_cycle=4, latency=100)
        assert pipe.request(0, 16) == 4 + 100

    def test_bandwidth_serializes_requests(self):
        pipe = MemoryPipeline(bytes_per_cycle=4, latency=0)
        first = pipe.request(0, 40)  # busy until 10
        second = pipe.request(0, 40)  # queues behind
        assert first == 10 and second == 20

    def test_idle_port_starts_at_now(self):
        pipe = MemoryPipeline(bytes_per_cycle=4, latency=0)
        pipe.request(0, 4)
        assert pipe.request(100, 4) == 101

    def test_ctx_uses_slow_rate_and_overhead(self):
        pipe = MemoryPipeline(
            bytes_per_cycle=8, latency=0, ctx_bytes_per_cycle=1,
            ctx_request_overhead=5,
        )
        assert pipe.request(0, 8, is_ctx=True) == 8 + 5
        assert pipe.request(100, 8) == 101  # streaming unaffected

    def test_ctx_load_speedup(self):
        pipe = MemoryPipeline(
            bytes_per_cycle=8, latency=0, ctx_bytes_per_cycle=1,
            ctx_load_speedup=2.0,
        )
        store = pipe.request(0, 16, is_ctx=True, kind="ctx_store") - 0
        load = pipe.request(1000, 16, is_ctx=True, kind="ctx_load") - 1000
        assert load < store

    def test_stats_accumulate(self):
        pipe = MemoryPipeline(bytes_per_cycle=4, latency=0)
        pipe.request(0, 8, kind="load")
        pipe.request(0, 8, kind="load")
        assert pipe.total_bytes == 16
        assert pipe.total_requests == 2
        assert pipe.stats_by_kind["load"] == 16

    def test_contention_between_ctx_and_streaming(self):
        # a big slow ctx transfer delays a later streaming request: the
        # paper's routines contend with other thread blocks' traffic
        pipe = MemoryPipeline(bytes_per_cycle=8, latency=0, ctx_bytes_per_cycle=1)
        pipe.request(0, 64, is_ctx=True)  # busy until 64
        assert pipe.request(1, 8) == 65

    def test_fractional_service_time_rounds_completion_up(self):
        # regression: `int(self._port_free)` truncated fractional service
        # times, reporting completion a cycle before the port was free
        pipe = MemoryPipeline(bytes_per_cycle=3, latency=0)
        assert pipe.request(0, 4) == 2  # port busy until 1.33 → cycle 2
        assert pipe.request(0, 4) == 3  # accumulates to 2.67 → cycle 3
        assert pipe.port_busy_until() == pytest.approx(8 / 3)

    def test_fractional_ctx_rate_rounds_up(self):
        # the shipped GPUConfig presets use fractional context-buffer rates
        # (e.g. 0.093 B/cycle), so every ctx request hits this path
        pipe = MemoryPipeline(
            bytes_per_cycle=8, latency=0, ctx_bytes_per_cycle=0.4
        )
        assert pipe.request(0, 1, is_ctx=True) == 3  # 2.5 cycles of service

    def test_fractional_service_with_latency(self):
        pipe = MemoryPipeline(bytes_per_cycle=3, latency=100)
        assert pipe.request(0, 4) == 2 + 100
