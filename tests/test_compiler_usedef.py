"""Value numbering: entry values, kills, copy propagation."""

from repro.compiler import number_region
from repro.isa import parse, sreg, vreg


def region_of(src, start=None, end=None, entry=()):
    program = parse(src)
    return program, number_region(
        program, start or 0, end if end is not None else len(program), entry
    )


class TestBasics:
    def test_entry_values_created_on_first_read(self):
        _, region = region_of("v_add v1, v2, v3\ns_endpgm")
        assert vreg(2) in region.entry and vreg(3) in region.entry
        assert region.entry[vreg(2)].is_entry

    def test_defs_create_fresh_values(self):
        _, region = region_of("v_mov v1, 1\nv_mov v1, 2\ns_endpgm")
        first = region.def_values_at(0)[0]
        second = region.def_values_at(1)[0]
        assert first.vid != second.vid
        assert first.def_pos == 0 and second.def_pos == 1

    def test_use_values_track_last_def(self):
        _, region = region_of(
            "v_mov v1, 1\nv_add v2, v1, v1\nv_mov v1, 3\nv_add v3, v1, v1\ns_endpgm"
        )
        v1_first = region.def_values_at(0)[0]
        v1_second = region.def_values_at(2)[0]
        assert region.use_values_at(1)[0] is v1_first
        assert region.use_values_at(3)[0] is v1_second

    def test_end_state_holds_last_values(self):
        _, region = region_of("v_mov v1, 1\nv_mov v1, 2\ns_endpgm")
        assert region.end_state[vreg(1)] is region.def_values_at(1)[0]

    def test_entry_seed_registers(self):
        _, region = region_of("s_endpgm", entry=[vreg(9)])
        assert vreg(9) in region.entry


class TestKills:
    def test_kill_recorded_with_position_and_slot(self):
        _, region = region_of("v_mov v1, 1\nv_mov v1, 2\ns_endpgm")
        first = region.def_values_at(0)[0]
        kills = region.kills_of[first]
        assert len(kills) == 1
        assert kills[0].pos == 1 and kills[0].slot == 0

    def test_entry_value_kill(self):
        _, region = region_of("v_add v1, v1, v2\ns_endpgm")
        entry = region.entry[vreg(1)]
        assert region.kills_of[entry][0].pos == 0

    def test_unkilled_value_has_no_entry(self):
        _, region = region_of("v_mov v1, 1\ns_endpgm")
        value = region.def_values_at(0)[0]
        assert value not in region.kills_of

    def test_pre_def_values(self):
        _, region = region_of("v_mov v1, 1\nv_mov v1, 2\ns_endpgm")
        assert region.pre_def_values_at(1)[0] is region.def_values_at(0)[0]


class TestCopyPropagation:
    def test_mov_propagates_value_identity(self):
        _, region = region_of("v_mov v1, v2\ns_endpgm")
        assert region.def_values_at(0)[0] is region.entry[vreg(2)]

    def test_value_live_in_two_registers(self):
        _, region = region_of("v_mov v1, v2\ns_endpgm")
        value = region.entry[vreg(2)]
        holders = region.live_regs_holding(value)
        assert set(holders) == {vreg(1), vreg(2)}

    def test_scalar_backup_pattern(self):
        # OSRB's insight: after s_mov s9, s4, the old s4 value survives in s9
        _, region = region_of("s_mov s9, s4\ns_add s4, s4, 1\ns_endpgm")
        old = region.entry[sreg(4)]
        assert region.end_state[sreg(9)] is old
        assert region.end_state[sreg(4)] is not old

    def test_imm_mov_is_not_a_copy(self):
        _, region = region_of("v_mov v1, 5\ns_endpgm")
        assert not region.def_values_at(0)[0].is_entry

    def test_cross_kind_copy_propagates(self):
        # broadcast of a scalar into a vector register keeps the value id
        _, region = region_of("v_mov v1, s2\ns_endpgm")
        assert region.def_values_at(0)[0] is region.entry[sreg(2)]


class TestSubRanges:
    def test_region_respects_bounds(self):
        program = parse("v_mov v1, 1\nv_mov v1, 2\nv_mov v1, 3\ns_endpgm")
        region = number_region(program, 1, 3)
        assert region.start == 1 and region.end == 3
        assert len(region.def_values) == 2
        assert region.def_values_at(1)[0].def_pos == 1
