"""Label-safe instruction insertion (OSRB / CKPT instrumentation)."""

import pytest

from repro.compiler.transform import insert_instructions, shifted_position
from repro.isa import inst, parse, serialize, sreg


def _mov(index=9):
    return inst("s_mov", sreg(index), sreg(4))


class TestInsertion:
    LOOP = """
        v_mov v1, 0
    LOOP:
        v_add v1, v1, 1
        s_cmp_lt s1, s2
        s_cbranch_scc1 LOOP
        s_endpgm
    """

    def test_insert_at_loop_header_executes_each_iteration(self):
        program = parse(self.LOOP)
        header = program.target_index("LOOP")
        new_program, positions = insert_instructions(program, [(header, _mov())])
        # label points AT the inserted instruction
        assert new_program.target_index("LOOP") == positions[0]
        assert new_program.instructions[positions[0]].mnemonic == "s_mov"

    def test_branch_still_targets_header(self):
        program = parse(self.LOOP)
        new_program, _ = insert_instructions(
            program, [(program.target_index("LOOP"), _mov())]
        )
        new_program.validate()
        # round-trips through the assembler too
        assert parse(serialize(new_program)).labels == new_program.labels

    def test_label_shifting_rules(self):
        program = parse("A:\ns_nop\nB:\ns_nop\nC:\ns_endpgm")
        new_program, _ = insert_instructions(program, [(1, _mov())])
        # strictly before the insertion: unchanged
        assert new_program.target_index("A") == 0
        # at the insertion point: targets the inserted instruction
        assert new_program.target_index("B") == 1
        assert new_program.instructions[1].mnemonic == "s_mov"
        # strictly after: shifted
        assert new_program.target_index("C") == 3

    def test_multiple_insertions_keep_relative_order(self):
        program = parse("s_nop\ns_nop\ns_endpgm")
        a, b = _mov(8), _mov(9)
        new_program, positions = insert_instructions(program, [(1, a), (1, b)])
        assert new_program.instructions[positions[0]] is a
        assert new_program.instructions[positions[1]] is b
        assert positions[1] == positions[0] + 1

    def test_insert_at_end(self):
        program = parse("s_nop")
        new_program, positions = insert_instructions(program, [(1, _mov())])
        assert positions == [1]
        assert len(new_program) == 2

    def test_out_of_range_rejected(self):
        program = parse("s_nop")
        with pytest.raises(ValueError):
            insert_instructions(program, [(5, _mov())])

    def test_unsorted_input_positions(self):
        program = parse("s_nop\ns_nop\ns_nop\ns_endpgm")
        new_program, positions = insert_instructions(
            program, [(3, _mov(8)), (0, _mov(9))]
        )
        assert new_program.instructions[positions[1]].dsts[0] == sreg(9)
        assert positions[1] == 0
        assert positions[0] == 4  # shifted by the insertion at 0


class TestShiftedPosition:
    def test_no_insertions(self):
        assert shifted_position([], 3) == 3

    def test_insertion_before_shifts(self):
        assert shifted_position([1], 3) == 4

    def test_insertion_at_position_shifts(self):
        assert shifted_position([3], 3) == 4

    def test_insertion_after_does_not_shift(self):
        assert shifted_position([4], 3) == 3

    def test_multiple(self):
        assert shifted_position([0, 2, 2, 7], 5) == 8
