"""Fault injection, context-integrity guards, and graceful degradation.

Covers the :mod:`repro.faults` subsystem end to end: checksum primitives,
every fault kind's injection + recovery path, the typed error surface
(:class:`ContextIntegrityError`, :class:`SimulationHangError`), the
zero-overhead guard (``faults=None`` must not perturb a single cycle or
event), and the chaos oracle.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.faults import (
    ContextIntegrityError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    SimulationHangError,
    context_checksum,
    scenario,
    scenario_names,
    snapshot_checksum,
)
from repro.faults.chaos import run_chaos_scenario
from repro.isa import Kernel, parse
from repro.mechanisms import make_mechanism
from repro.obs.events import EventKind
from repro.sim import (
    DeviceMemory,
    GPUConfig,
    LaunchSpec,
    MemoryPipeline,
    run_preemption_experiment,
    run_reference,
)

MECHANISMS = ["baseline", "live", "ckpt", "csdefer", "ctxback", "combined"]


def _run(
    launch,
    config,
    mechanism,
    *,
    faults=None,
    signal_dyn=40,
    resume_gap=200,
    trace=True,
):
    prepared = make_mechanism(mechanism).prepare(launch.kernel, config)
    run_config = (
        dataclasses.replace(config, trace_events=True) if trace else config
    )
    return run_preemption_experiment(
        launch.spec() if hasattr(launch, "spec") else launch,
        prepared,
        run_config,
        signal_dyn=signal_dyn,
        resume_gap=resume_gap,
        faults=faults,
    )


# -- checksum primitives -----------------------------------------------------


class TestChecksums:
    def test_context_checksum_deterministic(self):
        buffer = {0: np.arange(16, dtype=np.uint32), 64: 0x1234, "pc": 7}
        assert context_checksum(buffer) == context_checksum(dict(buffer))

    def test_context_checksum_key_order_independent(self):
        a = {0: 1, 64: 2}
        b = {64: 2, 0: 1}
        assert context_checksum(a) == context_checksum(b)

    def test_context_checksum_detects_single_bit_flip(self):
        values = np.arange(16, dtype=np.uint32)
        before = context_checksum({0: values})
        values[5] ^= np.uint32(1 << 17)
        assert context_checksum({0: values}) != before

    def test_context_checksum_detects_scalar_flip(self):
        assert context_checksum({0: 5}) != context_checksum({0: 4})

    def test_snapshot_checksum_detects_register_flip(self, small_config,
                                                     loop_launch):
        prepared = make_mechanism("ckpt").prepare(
            loop_launch.kernel, small_config
        )
        result = run_preemption_experiment(
            loop_launch, prepared, small_config, signal_dyn=40, resume_gap=100
        )
        assert result.verified
        # re-run without resume to grab a live snapshot is overkill: build
        # one synthetically from the snapshot type's own contract instead
        from repro.sim.warp import CkptSnapshot

        regs = (
            np.arange(32, dtype=np.uint32).reshape(8, 4),
            np.arange(8, dtype=np.uint32),
            np.ones(4, dtype=bool),
            1,
            3,
        )
        snapshot = CkptSnapshot(
            regs=regs, lds=None, dyn_count=40, probe_counts={}, nbytes=160,
            pc_after_probe=3,
        )
        before = snapshot_checksum(snapshot)
        regs[0][2, 1] ^= np.uint32(1)
        assert snapshot_checksum(snapshot) != before


# -- fault plans -------------------------------------------------------------


class TestFaultPlan:
    def test_scenarios_are_registered(self):
        names = scenario_names()
        assert "ctx-bitflip" in names and "compound" in names
        for name in names:
            plan = scenario(name, seed=3)
            assert plan.seed == 3 and plan.specs

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="ctx-bitflip"):
            scenario("definitely-not-a-scenario")

    def test_same_seed_same_faults(self, small_config, loop_launch):
        runs = [
            _run(loop_launch, small_config, "ctxback",
                 faults=scenario("ctx-burst", seed=11))
            for _ in range(2)
        ]
        details = [
            [(f.kind, f.warp_id, f.cycle, f.detail) for f in r.faults.injected]
            for r in runs
        ]
        assert details[0] == details[1] and details[0]


# -- zero-overhead guard -----------------------------------------------------


class TestZeroOverhead:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_empty_plan_changes_nothing(self, small_config, loop_launch,
                                        mechanism):
        """An armed-but-empty injector must be invisible: same cycles, same
        measurements, same event stream as ``faults=None``."""
        clean = _run(loop_launch, small_config, mechanism)
        armed = _run(loop_launch, small_config, mechanism, faults=FaultPlan())
        assert armed.total_cycles == clean.total_cycles
        assert [
            (m.warp_id, m.latency_cycles, m.resume_cycles, m.context_bytes)
            for m in armed.measurements
        ] == [
            (m.warp_id, m.latency_cycles, m.resume_cycles, m.context_bytes)
            for m in clean.measurements
        ]
        assert [
            (e.cycle, e.kind, e.warp_id, e.data)
            for e in armed.trace.sorted_events()
        ] == [
            (e.cycle, e.kind, e.warp_id, e.data)
            for e in clean.trace.sorted_events()
        ]
        assert not armed.faults.injected
        assert all(not m.degraded for m in armed.measurements)


# -- per-kind injection + recovery -------------------------------------------


class TestContextCorruption:
    def test_switch_strategy_degrades_to_full_reload(self, small_config,
                                                     loop_launch):
        result = _run(loop_launch, small_config, "ctxback",
                      faults=scenario("ctx-bitflip", seed=7))
        assert result.verified
        stats = result.faults.stats
        assert stats.integrity_failures > 0
        assert stats.degraded_resumes > 0
        degraded = [m for m in result.measurements if m.degraded]
        assert degraded
        assert all(m.recovery_cycles > 0 for m in degraded)

    def test_ckpt_discards_corrupt_checkpoint_and_restarts(self, small_config,
                                                           loop_launch):
        result = _run(loop_launch, small_config, "ckpt",
                      faults=scenario("ctx-bitflip", seed=7))
        assert result.verified
        stats = result.faults.stats
        assert stats.restarts > 0
        assert all(m.degraded for m in result.measurements)

    def test_no_degrade_policy_raises_typed_error(self, small_config,
                                                  loop_launch):
        injector = FaultInjector(
            scenario("ctx-bitflip", seed=7),
            policy=RecoveryPolicy(allow_degrade=False),
        )
        with pytest.raises(ContextIntegrityError) as excinfo:
            _run(loop_launch, small_config, "ctxback", faults=injector)
        assert excinfo.value.warp_id is not None
        assert excinfo.value.expected != excinfo.value.actual
        assert isinstance(excinfo.value, RuntimeError)  # typed but catchable

    def test_burst_corruption_recovers_too(self, small_config, loop_launch):
        result = _run(loop_launch, small_config, "combined",
                      faults=scenario("ctx-burst", seed=5))
        assert result.verified
        assert result.faults.stats.degraded > 0


class TestSignalFaults:
    def test_dropped_signal_is_redelivered(self, small_config, loop_launch):
        result = _run(loop_launch, small_config, "ctxback",
                      faults=scenario("signal-drop", seed=0))
        assert result.verified
        stats = result.faults.stats
        assert stats.redelivered == 2  # one per target warp
        # every warp still got preempted and measured
        assert len(result.measurements) == 2
        recover = [
            e for e in result.trace.events
            if e.kind is EventKind.RECOVER
            and e.data.get("action") == "redelivered"
        ]
        assert len(recover) == 2

    def test_duplicate_signal_is_absorbed(self, small_config, loop_launch):
        result = _run(loop_launch, small_config, "ctxback",
                      faults=scenario("signal-dup", seed=0))
        assert result.verified
        assert result.faults.stats.duplicates_ignored == 2
        # the duplicate must not produce a second measurement or eviction
        assert len(result.measurements) == 2
        evicts = [e for e in result.trace.events if e.kind is EventKind.EVICT]
        assert len(evicts) == 2


class TestRoutineAbort:
    def test_abort_falls_back_to_full_save(self, small_config, loop_launch):
        result = _run(loop_launch, small_config, "ctxback",
                      faults=scenario("routine-abort", seed=0))
        assert result.verified
        stats = result.faults.stats
        assert stats.degraded_saves == 2
        degraded = [m for m in result.measurements if m.degraded]
        assert len(degraded) == 2
        # the fallback charges the full baseline context, so a degraded save
        # can never report fewer bytes than the flashback plan promised
        from repro.ctxback.context import baseline_context_bytes

        full = baseline_context_bytes(loop_launch.kernel, small_config.rf_spec)
        assert all(m.context_bytes == full for m in degraded)

    def test_ckpt_has_no_routine_to_abort(self, small_config, loop_launch):
        result = _run(loop_launch, small_config, "ckpt",
                      faults=scenario("routine-abort", seed=0))
        assert result.verified
        assert not result.faults.injected  # nothing fired: no routine ran


class TestMemStall:
    def test_stall_burst_slows_but_stays_correct(self, small_config,
                                                 loop_launch):
        clean = _run(loop_launch, small_config, "ctxback")
        stalled = _run(loop_launch, small_config, "ctxback",
                       faults=scenario("stall-burst", seed=0))
        assert stalled.verified
        assert stalled.faults.stats.stalls == 1
        assert stalled.total_cycles > clean.total_cycles


# -- event-stream accounting -------------------------------------------------


class TestEventAccounting:
    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_every_injection_is_traced(self, small_config, loop_launch, name):
        result = _run(loop_launch, small_config, "combined",
                      faults=scenario(name, seed=7))
        assert result.verified
        injected = [
            e for e in result.trace.events if e.kind is EventKind.FAULT_INJECT
        ]
        assert len(injected) == len(result.faults.injected)
        for event in injected:
            assert "fault" in event.data
        degrade_warps = {
            e.warp_id for e in result.trace.events
            if e.kind is EventKind.DEGRADE
        }
        recover_warps = {
            e.warp_id for e in result.trace.events
            if e.kind is EventKind.RECOVER
        }
        assert degrade_warps <= recover_warps


# -- chaos oracle ------------------------------------------------------------


class TestChaosOracle:
    @pytest.mark.parametrize("mechanism", ["ctxback", "ckpt", "live"])
    def test_compound_scenario_passes_oracle(self, mechanism):
        verdict = run_chaos_scenario(
            "mm", mechanism, "compound",
            seed=7, config=GPUConfig.small(4), iterations=2,
        )
        assert verdict["ok"], verdict
        assert verdict["checks"] == {
            "memory": True, "registers": True, "events": True
        }
        assert verdict["injected"] > 0

    def test_verdict_shape(self):
        verdict = run_chaos_scenario(
            "mm", "ctxback", "ctx-bitflip",
            seed=0, config=GPUConfig.small(4), iterations=2,
        )
        for key in ("kernel", "mechanism", "scenario", "seed", "ok", "checks",
                    "injected", "degraded_warps", "recovery", "latency",
                    "clean_latency", "recovery_cycles"):
            assert key in verdict
        assert verdict["recovery"]["injected"] == verdict["injected"]


# -- watchdog ----------------------------------------------------------------


LIVELOCK = """
LOOP:
    s_branch LOOP
"""


class TestWatchdog:
    @pytest.fixture()
    def livelock_launch(self):
        kernel = Kernel(
            "livelock", parse(LIVELOCK), vgprs_used=1, sgprs_used=1,
            noalias=True, warps_per_block=1,
        )
        return LaunchSpec(
            kernel=kernel,
            setup_memory=lambda memory: None,
            setup_warp=lambda state, index: None,
        )

    def test_reference_run_raises_hang_error(self, livelock_launch):
        config = dataclasses.replace(GPUConfig.small(4), max_cycles=2000)
        with pytest.raises(SimulationHangError) as excinfo:
            run_reference(livelock_launch, config)
        error = excinfo.value
        assert error.cycle > 2000
        assert error.warp_dump and error.warp_dump[0]["mode"] == "running"
        assert "warp 0" in str(error)  # the dump is part of the message
        assert isinstance(error, RuntimeError)  # old callers still catch it

    def test_preemption_experiment_raises_hang_error(self, livelock_launch):
        config = dataclasses.replace(GPUConfig.small(4), max_cycles=2000)
        prepared = make_mechanism("baseline").prepare(
            livelock_launch.kernel, config
        )
        with pytest.raises(SimulationHangError):
            run_preemption_experiment(
                livelock_launch, prepared, config,
                signal_dyn=1 << 60, resume_gap=10, verify=False,
            )


# -- satellite: construction-time validation ---------------------------------


class TestValidation:
    def test_pipeline_rejects_zero_rates(self):
        with pytest.raises(ValueError, match="bytes_per_cycle"):
            MemoryPipeline(bytes_per_cycle=0, latency=1)
        with pytest.raises(ValueError, match="ctx_bytes_per_cycle"):
            MemoryPipeline(bytes_per_cycle=64, latency=1, ctx_bytes_per_cycle=0)
        with pytest.raises(ValueError, match="ctx_load_speedup"):
            MemoryPipeline(bytes_per_cycle=64, latency=1, ctx_load_speedup=0)

    def test_pipeline_none_ctx_rate_uses_streaming_rate(self):
        pipeline = MemoryPipeline(
            bytes_per_cycle=64, latency=0, ctx_bytes_per_cycle=None
        )
        # 128 bytes at 64 B/cycle: 2 cycles of port occupancy either way
        assert pipeline.request(0, 128, is_ctx=True) == pipeline.request(
            2, 128, is_ctx=False
        ) - 2

    def test_gpu_config_rejects_bad_rates(self):
        with pytest.raises(ValueError, match="ctx_bytes_per_cycle"):
            dataclasses.replace(GPUConfig.small(4), ctx_bytes_per_cycle=0)
        with pytest.raises(ValueError, match="mem_bytes_per_cycle"):
            dataclasses.replace(GPUConfig.small(4), mem_bytes_per_cycle=-1)
        with pytest.raises(ValueError, match="max_cycles"):
            dataclasses.replace(GPUConfig.small(4), max_cycles=0)

    def test_device_memory_load_past_end_raises(self):
        memory = DeviceMemory(size_bytes=1024)
        with pytest.raises(ValueError, match="runs past the end"):
            memory.load_array(1020, 4)
        with pytest.raises(ValueError, match="negative"):
            memory.load_array(0, -1)

    def test_device_memory_store_past_end_raises(self):
        memory = DeviceMemory(size_bytes=1024)
        with pytest.raises(ValueError, match="runs past the end"):
            memory.store_array(1000, np.arange(32, dtype=np.uint32))

    def test_device_memory_in_bounds_roundtrip(self):
        memory = DeviceMemory(size_bytes=1024)
        values = np.arange(8, dtype=np.uint32)
        memory.store_array(1024 - 32, values)
        assert np.array_equal(memory.load_array(1024 - 32, 8), values)


# -- engine integration ------------------------------------------------------


class TestEngineIntegration:
    def test_experiment_unit_with_faults_profiles_recovery(self):
        from repro.analysis.engine import ExperimentEngine, ExperimentUnit

        unit = ExperimentUnit(
            key="mm", mechanism="ctxback", config=GPUConfig.small(4),
            signal_dyn=40, resume_gap=200, iterations=2, verify=True,
            faults=scenario("ctx-bitflip", seed=7),
        )
        engine = ExperimentEngine(jobs=1)
        profile = engine.map([unit])[0]
        assert profile["verified"]
        assert profile["recovery"]["injected"] > 0
        assert profile["degraded_warps"]
        assert profile["recovery_cycles"] > 0
        report = engine.report.as_dict()
        assert report["recovery"]["faulted_units"] == 1
        assert report["recovery"]["injected"] == profile["recovery"]["injected"]

    def test_faulted_and_clean_profiles_never_alias(self):
        from repro.analysis.engine import experiment_profile_for

        config = GPUConfig.small(4)
        clean = experiment_profile_for(
            "mm", "ctxback", config, 2, 40, 200, True
        )
        faulted = experiment_profile_for(
            "mm", "ctxback", config, 2, 40, 200, True,
            faults=scenario("ctx-bitflip", seed=7),
        )
        assert "recovery" not in clean
        assert faulted["recovery"]["injected"] > 0

    def test_chaos_unit_is_picklable_and_cacheable(self):
        import pickle

        from repro.faults.chaos import ChaosUnit

        unit = ChaosUnit(
            key="mm", mechanism="ckpt", scenario="signal-drop", seed=1,
            config=GPUConfig.small(4), iterations=2,
        )
        clone = pickle.loads(pickle.dumps(unit))
        first = clone.run()
        second = clone.run()  # second call must come from the cache
        assert first == second
        assert first["ok"], first
