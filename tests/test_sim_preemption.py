"""Preemption controller: signal delivery, eviction, resume, measurement."""

import pytest

from repro.mechanisms import make_mechanism
from repro.sim import (
    GPUConfig,
    WarpMode,
    run_preemption_experiment,
    run_reference,
)


@pytest.fixture()
def prepared_live(loop_kernel, small_config):
    return make_mechanism("live").prepare(loop_kernel, small_config)


class TestSignalFlow:
    def test_signal_delivered_once(self, loop_launch, prepared_live, small_config):
        result = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=20, resume_gap=200
        )
        assert len(result.measurements) == 2  # one per warp, exactly once

    def test_signal_pc_matches_dyn_trigger(
        self, loop_launch, prepared_live, small_config
    ):
        result = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=20, resume_gap=200
        )
        for m in result.measurements:
            assert 0 <= m.signal_pc < len(prepared_live.kernel.program.instructions)

    def test_latency_positive_and_measured(
        self, loop_launch, prepared_live, small_config
    ):
        result = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=20, resume_gap=200
        )
        for m in result.measurements:
            assert m.latency_cycles > 0
            assert m.resume_cycles is not None and m.resume_cycles > 0

    def test_verified_against_reference(
        self, loop_launch, prepared_live, small_config
    ):
        result = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=20, resume_gap=200
        )
        assert result.verified

    def test_registers_cleared_on_eviction(
        self, loop_launch, prepared_live, small_config
    ):
        # the experiment only verifies if resume rebuilt state from the
        # context buffer: clearing at eviction proves restore correctness
        result = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=20, resume_gap=200
        )
        assert result.verified

    def test_signal_beyond_end_never_fires(
        self, loop_launch, prepared_live, small_config
    ):
        result = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=1 << 40,
            resume_gap=100,
        )
        assert result.measurements == []
        assert result.verified


class TestResumeGap:
    def test_gap_delays_resume(self, loop_launch, prepared_live, small_config):
        short = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=20, resume_gap=10
        )
        long = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=20, resume_gap=5000
        )
        assert long.total_cycles > short.total_cycles
        assert long.verified and short.verified


class TestResumeGapExact:
    """The gap is a contract: resume is delivered *at* ``resume_at`` —
    never early (idle SM) and never late (stalled scheduler)."""

    def _resume_points(self, result):
        sm = result.sm
        done = max(
            w.preempt_done_cycle
            for w in sm.warps
            if w.preempt_done_cycle is not None
        )
        starts = {
            w.resume_start_cycle
            for w in sm.warps
            if w.resume_start_cycle is not None
        }
        return done, starts

    def test_idle_sm_waits_full_gap(
        self, loop_launch, prepared_live, small_config
    ):
        """No background work: the SM goes idle the moment the targets are
        evicted, and idle time must warp forward to exactly the deadline
        instead of resuming early."""
        gap = 5000
        result = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=20,
            resume_gap=gap,
        )
        assert result.verified
        done, starts = self._resume_points(result)
        assert starts == {done + gap}

    @pytest.mark.parametrize("core", ["fast", "reference"])
    def test_stalled_scheduler_resumes_exactly_at_deadline(self, core):
        """Regression: with every target evicted and the background warps
        memory-stalled far beyond the deadline, both cores used to leap to
        the stalled warps' ready cycle and deliver the resume thousands of
        cycles late."""
        import dataclasses

        from repro.kernels import SUITE

        gap = 50
        config = dataclasses.replace(
            GPUConfig.radeon_vii_contended(), core=core
        )
        bench = SUITE["va"]
        launch = bench.launch(
            warp_size=config.warp_size, iterations=bench.default_iterations
        )
        background = SUITE["mm"].launch(
            warp_size=config.warp_size,
            iterations=SUITE["mm"].default_iterations,
        )
        prepared = make_mechanism("ctxback").prepare(launch.kernel, config)
        result = run_preemption_experiment(
            launch.spec(), prepared, config, signal_dyn=30,
            background=background.spec(), resume_gap=gap, verify=False,
        )
        done, starts = self._resume_points(result)
        assert starts == {done + gap}


class TestMeanResumeSentinel:
    def test_absent_resume_data_is_none(
        self, loop_launch, prepared_live, small_config
    ):
        """A run with no resume measurements reports ``None``, not the
        falsy ``0.0`` that averaged into figures as a phantom free resume."""
        result = run_preemption_experiment(
            loop_launch, prepared_live, small_config, signal_dyn=1 << 40,
            resume_gap=100,
        )
        assert result.measurements == []
        assert result.mean_resume is None

    def test_genuine_zero_resume_stays_zero(
        self, loop_launch, loop_kernel, small_config
    ):
        """DRAIN finishes the warp in place: its 0-cycle resume is a real
        value and must stay distinguishable from "absent"."""
        prepared = make_mechanism("drain").prepare(loop_kernel, small_config)
        result = run_preemption_experiment(
            loop_launch, prepared, small_config, signal_dyn=20, resume_gap=100
        )
        assert result.measurements
        assert result.mean_resume == 0.0
        assert result.mean_resume is not None


class TestCkptFlow:
    def test_near_zero_latency(self, loop_launch, loop_kernel, small_config):
        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        result = run_preemption_experiment(
            loop_launch, prepared, small_config, signal_dyn=40, resume_gap=200
        )
        live = make_mechanism("live").prepare(loop_kernel, small_config)
        live_result = run_preemption_experiment(
            loop_launch, live, small_config, signal_dyn=40, resume_gap=200
        )
        assert result.mean_latency < live_result.mean_latency
        assert result.verified

    def test_resume_includes_rollback_reexecution(
        self, loop_launch, loop_kernel, small_config
    ):
        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        # deep signal: several iterations past the last checkpoint
        result = run_preemption_experiment(
            loop_launch, prepared, small_config, signal_dyn=80, resume_gap=200
        )
        assert result.verified
        assert result.mean_resume > 0

    def test_restart_from_zero_when_never_checkpointed(
        self, loop_launch, loop_kernel
    ):
        config = GPUConfig.small(warp_size=4)
        prepared = make_mechanism("ckpt").prepare(loop_kernel, config)
        # kill the probes' first firing by signalling before any probe runs:
        # dyn 1 is before the first ckpt_probe executes only if the probe is
        # not at position 0; either way the run must still verify
        result = run_preemption_experiment(
            loop_launch, prepared, config, signal_dyn=1, resume_gap=100
        )
        assert result.verified


class TestBackgroundContention:
    def test_background_warps_keep_running(
        self, loop_launch, prepared_live, small_config, loop_kernel
    ):
        import numpy as np

        from repro.sim import LaunchSpec

        def bg_memory(memory):
            memory.store_array(0x20000, np.arange(128, dtype=np.uint32))

        def bg_warp(state, index):
            span = 12 * state.warp_size * 4
            state.sregs[0] = 0x20000
            state.sregs[1] = 0x30000
            state.sregs[2] = 12
            state.sregs[3] = state.warp_size * 4
            state.vregs[0, :] = np.arange(state.warp_size)

        background = LaunchSpec(
            kernel=loop_kernel, setup_memory=bg_memory, setup_warp=bg_warp
        )
        result = run_preemption_experiment(
            loop_launch,
            prepared_live,
            small_config,
            signal_dyn=20,
            resume_gap=300,
            background=background,
        )
        # functional verification covers both kernels' outputs
        assert result.verified
        # the background kernel completed its work alongside the preemption
        assert result.memory.load_word(0x30000) != 0
        # only the target warps were preempted
        assert len(result.measurements) == 2


class TestDropResumeWatch:
    def test_watch_target_of_dyn_zero_survives_resume(self):
        """Regression: the drop-resume path set the watch with
        ``watch or dyn_count``, so a legitimate watch target of dynamic
        instruction 0 was clobbered by the restored checkpoint progress
        (ending the resume measurement at the wrong instruction)."""
        from types import SimpleNamespace

        from repro.sim.memory import MemoryPipeline
        from repro.sim.preemption import PreemptionController, WarpMeasurement
        from repro.sim.warp import CkptSnapshot, SimWarp

        sm = SimpleNamespace(
            pipeline=MemoryPipeline(bytes_per_cycle=8, latency=0),
            refresh_issuable=lambda: None,
            tracer=None,
        )
        warp = SimWarp(
            warp_id=0,
            state=SimpleNamespace(restore_regs=lambda regs: None),
            main_program=SimpleNamespace(),
        )
        warp.mode = WarpMode.EVICTED
        warp.active_strategy = "drop"
        warp.resume_watch_dyn = 0  # preempted at dynamic instruction 0
        warp.last_checkpoint = CkptSnapshot(
            regs=(), lds=None, dyn_count=5, probe_counts={}, nbytes=64,
            pc_after_probe=1,
        )
        controller = PreemptionController(
            sm=sm, prepared=SimpleNamespace(), target_warp_ids={0}, signal_dyn=0
        )
        controller.measurements[0] = WarpMeasurement(
            warp_id=0, signal_pc=0, signal_cycle=0, latency_cycles=1
        )
        controller.resume_warp(warp, cycle=10)
        assert warp.mode is WarpMode.RUNNING
        assert warp.resume_watch_dyn == 0  # `or` rewrote this to 5

    def test_ckpt_signal_at_dyn_zero_still_verifies(
        self, loop_launch, loop_kernel, small_config
    ):
        """End-to-end: a preemption landing at dynamic instruction 0 walks
        the watch-target-zero path and must still resume correctly."""
        from repro.mechanisms import make_mechanism

        prepared = make_mechanism("ckpt").prepare(loop_kernel, small_config)
        result = run_preemption_experiment(
            loop_launch, prepared, small_config, signal_dyn=0, resume_gap=100
        )
        assert result.verified
