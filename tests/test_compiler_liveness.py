"""Liveness analysis: hand-checked examples + consistency invariants."""

from repro.compiler import analyze_liveness, build_cfg
from repro.isa import EXEC, SCC, parse, sreg, vreg


def live_of(src):
    program = parse(src)
    return program, analyze_liveness(program)


class TestStraightLine:
    def test_use_makes_live_in(self):
        _, lv = live_of("v_add v1, v2, v3\ns_endpgm")
        assert {vreg(2), vreg(3), EXEC} <= lv.live_in[0]

    def test_def_kills_liveness_upward(self):
        _, lv = live_of(
            """
            v_mov v1, 1
            v_add v2, v1, v1
            global_store v3, v2, 0
            s_endpgm
            """
        )
        # v1 is not live before its own definition
        assert vreg(1) not in lv.live_in[0]
        assert vreg(1) in lv.live_in[1]
        # v2 is live only between its def and its use
        assert vreg(2) not in lv.live_in[1]
        assert vreg(2) in lv.live_in[2]

    def test_dead_code_not_live(self):
        _, lv = live_of("v_mov v1, 1\ns_endpgm")
        assert vreg(1) not in lv.live_out[0]

    def test_context_regs_alias_live_in(self):
        _, lv = live_of("v_add v1, v2, v3\ns_endpgm")
        assert lv.context_regs(0) == lv.live_in[0]


class TestAcrossBlocks:
    LOOP = """
        v_mov v1, 0
        s_mov s4, 0
    LOOP:
        v_add v1, v1, v2
        s_add s4, s4, 1
        s_cmp_lt s4, s3
        s_cbranch_scc1 LOOP
        global_store v5, v1, 0
        s_endpgm
    """

    def test_loop_carried_register_live_at_header(self):
        _, lv = live_of(self.LOOP)
        # v1 accumulates across iterations: live at the loop header
        assert vreg(1) in lv.live_in[2]
        assert sreg(4) in lv.live_in[2]

    def test_loop_invariant_live_through_loop(self):
        _, lv = live_of(self.LOOP)
        assert vreg(2) in lv.live_in[2]  # operand each iteration
        assert sreg(3) in lv.live_in[2]  # loop bound
        assert vreg(5) in lv.live_in[2]  # store address used after loop

    def test_scc_live_between_cmp_and_branch(self):
        _, lv = live_of(self.LOOP)
        assert SCC in lv.live_in[5]  # before the cbranch
        assert SCC not in lv.live_in[4]  # before the cmp that defines it

    def test_block_level_accessors(self):
        program, lv = live_of(self.LOOP)
        cfg = lv.cfg
        header_block = cfg.block_at(2).index
        assert vreg(1) in lv.block_live_in(header_block)
        assert vreg(1) in lv.block_live_out(header_block)


class TestInvariants:
    def test_live_in_equals_use_plus_liveout_minus_def(self, loop_kernel):
        program = loop_kernel.program
        lv = analyze_liveness(program)
        for pos, instruction in enumerate(program.instructions):
            expected = (
                lv.live_out[pos] - frozenset(instruction.defs())
            ) | frozenset(instruction.uses())
            assert lv.live_in[pos] == expected, pos

    def test_live_out_is_union_of_successor_live_ins(self, loop_kernel):
        program = loop_kernel.program
        cfg = build_cfg(program)
        lv = analyze_liveness(program, cfg)
        for block in cfg.blocks:
            last = block.end - 1
            expected = frozenset().union(
                *(lv.live_in[cfg.blocks[s].start] for s in block.successors)
            ) if block.successors else frozenset()
            assert lv.live_out[last] == expected

    def test_within_block_chaining(self, loop_kernel):
        program = loop_kernel.program
        cfg = build_cfg(program)
        lv = analyze_liveness(program, cfg)
        for block in cfg.blocks:
            for pos in range(block.start, block.end - 1):
                assert lv.live_out[pos] == lv.live_in[pos + 1]
