"""Engine + artifact cache: keys, determinism, serial/parallel equivalence.

Covers the regression that motivated the content-addressed keys: the old
per-process dicts keyed prepared kernels and weights on ``config.warp_size``
only, so ``radeon_vii`` and ``radeon_vii_contended`` (same warp size,
different memory model) aliased to one entry.
"""

from __future__ import annotations

import contextlib
import enum
import pickle
from dataclasses import dataclass

import pytest

from repro.analysis.cache import (
    ArtifactCache,
    canonical,
    configure_cache,
    get_cache,
)
from repro.analysis.engine import (
    ExperimentEngine,
    prepared_for,
    reference_cycles_for,
    resolve_jobs,
    weights_for,
)
from repro.analysis.experiments import fig7_context_size, preemption_timing
from repro.sim.config import GPUConfig


@contextlib.contextmanager
def cache_at(root):
    """Temporarily repoint the singleton cache (restored afterwards)."""
    previous = get_cache()
    try:
        yield configure_cache(root=root, enabled=True)
    finally:
        configure_cache(root=previous.root, enabled=previous.enabled)


# -- canonical content description ---------------------------------------------


class Color(enum.Enum):
    RED = 1


@dataclass
class Point:
    x: int
    y: int


def test_canonical_dataclass_enum_and_ordering():
    assert canonical(Point(1, 2)) == {"x": 1, "y": 2}
    assert canonical(Color.RED) == "Color.RED"
    assert canonical({"b": 2, "a": 1}) == {"a": 1, "b": 2}
    assert canonical((1, [2, 3])) == [1, [2, 3]]
    with pytest.raises(TypeError):
        canonical(object())


def test_gpu_configs_with_same_warp_size_get_distinct_keys():
    cache = ArtifactCache(enabled=False)
    vii = GPUConfig.radeon_vii()
    contended = GPUConfig.radeon_vii_contended()
    assert vii.warp_size == contended.warp_size  # the old keys' blind spot
    parts_a = {"config": canonical(vii)}
    parts_b = {"config": canonical(contended)}
    assert cache.key_for("prepared", parts_a) != cache.key_for("prepared", parts_b)


# -- the aliasing regression (satellite of the engine work) --------------------


def test_no_aliasing_between_radeon_vii_and_contended(tmp_path):
    """radeon_vii vs radeon_vii_contended share a warp size but must not
    share cache entries: their reference profiles genuinely differ."""
    vii = GPUConfig.radeon_vii()
    contended = GPUConfig.radeon_vii_contended()
    with cache_at(tmp_path) as cache:
        weights_for("ge", vii)
        weights_for("ge", contended)
        prepared_for("ge", "ctxback", vii)
        prepared_for("ge", "ctxback", contended)
        inventory = cache.entries()
        assert inventory["weights"]["entries"] == 2
        assert inventory["prepared"]["entries"] == 2
        clean_vii = reference_cycles_for("ge", vii)
        clean_contended = reference_cycles_for("ge", contended)
    # the two presets time memory differently — one aliased entry would
    # have returned the same cycles for both
    assert clean_vii != clean_contended


# -- store behavior -------------------------------------------------------------


def test_get_or_create_computes_once_and_persists(tmp_path):
    calls = []

    def factory():
        calls.append(1)
        return {"value": 42}

    cache = ArtifactCache(root=tmp_path, enabled=True)
    parts = {"k": "v"}
    assert cache.get_or_create("test", parts, factory) == {"value": 42}
    assert cache.get_or_create("test", parts, factory) == {"value": 42}
    assert len(calls) == 1
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    # a fresh instance (new process) hits the disk entry
    fresh = ArtifactCache(root=tmp_path, enabled=True)
    assert fresh.get_or_create("test", parts, factory) == {"value": 42}
    assert len(calls) == 1
    assert fresh.stats.hits == 1


def test_corrupt_entry_is_invalidated_and_recomputed(tmp_path):
    cache = ArtifactCache(root=tmp_path, enabled=True)
    digest = cache.key_for("test", {"k": 1})
    cache.put("test", digest, "good")
    path = tmp_path / "test" / f"{digest}.pkl"
    path.write_bytes(b"not a pickle")
    fresh = ArtifactCache(root=tmp_path, enabled=True)
    hit, _ = fresh.get("test", digest)
    assert not hit
    assert fresh.stats.invalidations == 1
    assert not path.exists()


def test_disabled_cache_still_dedups_in_memory(tmp_path):
    calls = []
    cache = ArtifactCache(root=tmp_path, enabled=False)
    cache.get_or_create("test", {"k": 1}, lambda: calls.append(1) or "x")
    cache.get_or_create("test", {"k": 1}, lambda: calls.append(1) or "x")
    assert len(calls) == 1
    assert not (tmp_path / "test").exists()


def test_clear_empties_the_store(tmp_path):
    cache = ArtifactCache(root=tmp_path, enabled=True)
    cache.put("test", cache.key_for("test", {"k": 1}), "a")
    cache.put("other", cache.key_for("other", {"k": 2}), "b")
    assert cache.clear() == 2
    assert cache.entries() == {"other": {"entries": 0, "bytes": 0},
                               "test": {"entries": 0, "bytes": 0}}


def test_prepared_kernels_pickle_without_sim_tables(tmp_path):
    """Simulating attaches per-program issue tables (with lambdas) to the
    Program; pickling for the cache must strip them."""
    config = GPUConfig.radeon_vii()
    with cache_at(tmp_path):
        weights_for("ge", config)  # runs a simulation → tables attached
        prepared = prepared_for("ge", "ctxback", config)
    blob = pickle.dumps(prepared)
    clone = pickle.loads(blob)
    assert "_sim_tables" not in clone.kernel.program.__dict__


# -- jobs resolution -------------------------------------------------------------


def test_resolve_jobs_env_and_arguments(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(0) == 1
    monkeypatch.setenv("REPRO_JOBS", "8")
    assert resolve_jobs(None) == 8
    assert resolve_jobs(2) == 2
    monkeypatch.setenv("REPRO_JOBS", "garbage")
    assert resolve_jobs(None) == 1


# -- serial vs parallel vs warm equivalence --------------------------------------


def _figure_rows(fig):
    return [(row.key, row.baseline_value, dict(row.normalized)) for row in fig.rows]


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """fig7 + fig8/fig9 rows from a cold serial run (the ground truth)."""
    root = tmp_path_factory.mktemp("cache-serial")
    with cache_at(root):
        fig7 = fig7_context_size(keys=["ge"], engine=ExperimentEngine(1))
        fig8, fig9 = preemption_timing(
            keys=["ge"], samples=2, engine=ExperimentEngine(1)
        )
    return _figure_rows(fig7), _figure_rows(fig8), _figure_rows(fig9)


@pytest.mark.parametrize("jobs", [1, 4])
def test_parallel_runs_are_bit_identical_to_serial(
    serial_reference, tmp_path, jobs
):
    with cache_at(tmp_path):
        fig7 = fig7_context_size(keys=["ge"], engine=ExperimentEngine(jobs))
        fig8, fig9 = preemption_timing(
            keys=["ge"], samples=2, engine=ExperimentEngine(jobs)
        )
    assert (
        _figure_rows(fig7),
        _figure_rows(fig8),
        _figure_rows(fig9),
    ) == serial_reference


def test_warm_cache_run_is_bit_identical(serial_reference, tmp_path):
    with cache_at(tmp_path):
        fig7_context_size(keys=["ge"], engine=ExperimentEngine(1))
        preemption_timing(keys=["ge"], samples=2, engine=ExperimentEngine(1))
    # fresh in-memory layer over the same on-disk store: pure cache loads
    with cache_at(tmp_path) as cache:
        engine = ExperimentEngine(1)
        fig7 = fig7_context_size(keys=["ge"], engine=engine)
        fig8, fig9 = preemption_timing(keys=["ge"], samples=2, engine=engine)
        assert cache.stats.misses == 0
        assert cache.stats.hits > 0
    assert (
        _figure_rows(fig7),
        _figure_rows(fig8),
        _figure_rows(fig9),
    ) == serial_reference


def test_engine_report_accumulates(tmp_path):
    with cache_at(tmp_path):
        engine = ExperimentEngine(1)
        fig7_context_size(keys=["ge"], engine=engine)
        report = engine.report
    assert report.jobs == 1
    assert report.waves == 2  # weights wave + context wave
    assert report.units == 1 + 5  # 1 kernel × (1 weights + 5 mechanisms)
    assert report.wall_s > 0
    assert report.cache["misses"] > 0


# -- scoreboard prune threshold (hoisted magic number) ---------------------------


def test_scoreboard_prune_threshold_is_configurable_and_neutral():
    """The threshold only bounds scoreboard size — pruning removes completed
    writes, so any value must leave measured cycles unchanged."""
    from dataclasses import replace

    from repro.kernels.suite import SUITE
    from repro.sim.gpu import run_reference

    config = GPUConfig.radeon_vii()
    assert config.scoreboard_prune_threshold == 64
    eager = replace(config, scoreboard_prune_threshold=0)
    launch = SUITE["ge"].launch(
        warp_size=config.warp_size, iterations=SUITE["ge"].default_iterations
    )
    assert (
        run_reference(launch.spec(), config).cycles
        == run_reference(launch.spec(), eager).cycles
    )


# -- entry integrity: footer, truncation, bit flips ------------------------------


def test_entry_footer_roundtrip_and_layout():
    blob = ArtifactCache.encode_entry({"a": 1})
    assert blob[-36:-32] == b"RCK2"
    import hashlib

    assert hashlib.sha256(blob[:-36]).digest() == blob[-32:]
    assert ArtifactCache.decode_entry(blob) == {"a": 1}


def test_truncated_entry_is_invalidated_and_recomputed(tmp_path):
    cache = ArtifactCache(root=tmp_path, enabled=True)
    digest = cache.key_for("test", {"k": 1})
    cache.put("test", digest, "x" * 1000)
    path = tmp_path / "test" / f"{digest}.pkl"
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])  # lost the tail (and footer)
    fresh = ArtifactCache(root=tmp_path, enabled=True)
    assert fresh.get_or_create("test", {"k": 1}, lambda: "recomputed") == "recomputed"
    assert fresh.stats.invalidations == 1
    assert fresh.stats.stores == 1
    # the healthy entry was re-stored and now round-trips
    assert ArtifactCache(root=tmp_path, enabled=True).get("test", digest) == (
        True,
        "recomputed",
    )


def test_bit_flip_is_caught_by_the_checksum(tmp_path):
    """A single flipped byte mid-payload still unpickles fine — only the
    checksum footer can catch it."""
    cache = ArtifactCache(root=tmp_path, enabled=True)
    digest = cache.key_for("test", {"k": 1})
    cache.put("test", digest, b"A" * 1000)
    path = tmp_path / "test" / f"{digest}.pkl"
    blob = bytearray(path.read_bytes())
    blob[500] ^= 0xFF  # inside the pickled bytes body: pickle.loads succeeds
    with pytest.raises(ValueError, match="checksum mismatch"):
        ArtifactCache.decode_entry(bytes(blob))
    path.write_bytes(bytes(blob))
    fresh = ArtifactCache(root=tmp_path, enabled=True)
    hit, _ = fresh.get("test", digest)
    assert not hit
    assert fresh.stats.invalidations == 1
    assert not path.exists()


def test_legacy_footerless_entry_is_invalidated(tmp_path):
    cache = ArtifactCache(root=tmp_path, enabled=True)
    digest = cache.key_for("test", {"k": 1})
    path = tmp_path / "test" / f"{digest}.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps("schema-1 entry"))  # valid pickle, no footer
    hit, _ = cache.get("test", digest)
    assert not hit
    assert cache.stats.invalidations == 1
    assert not path.exists()


# -- size cap / LRU eviction -----------------------------------------------------


def test_eviction_is_lru_by_mtime_and_hits_refresh_recency(tmp_path):
    import os

    cache = ArtifactCache(root=tmp_path, enabled=True, max_bytes=0)
    digests = [cache.key_for("test", {"k": i}) for i in range(3)]
    for i, digest in enumerate(digests):
        cache.put("test", digest, b"x" * 4096)
    paths = [tmp_path / "test" / f"{d}.pkl" for d in digests]
    entry_size = paths[0].stat().st_size
    for i, path in enumerate(paths):  # entry 0 oldest, entry 2 newest
        os.utime(path, (1_000_000 + i, 1_000_000 + i))
    # a hit refreshes entry 0's mtime, so entry 1 becomes the LRU victim
    fresh = ArtifactCache(root=tmp_path, enabled=True, max_bytes=2 * entry_size)
    assert fresh.get("test", digests[0])[0]
    assert fresh.evict_to_cap() == 1
    assert fresh.stats.evictions == 1
    assert paths[0].exists() and paths[2].exists()
    assert not paths[1].exists()
    # a store over the cap evicts automatically (put → evict_to_cap)
    fresh.put("test", fresh.key_for("test", {"k": 99}), b"y" * 4096)
    assert fresh.stats.evictions == 2
    assert sum(p.stat().st_size for p in (tmp_path / "test").glob("*.pkl")) <= (
        2 * entry_size + 64
    )


def test_no_cap_means_no_eviction(tmp_path):
    cache = ArtifactCache(root=tmp_path, enabled=True, max_bytes=0)
    for i in range(5):
        cache.put("test", cache.key_for("test", {"k": i}), b"x" * 4096)
    assert cache.evict_to_cap() == 0
    assert cache.stats.evictions == 0


# -- cumulative stats merging ----------------------------------------------------


def test_flush_stats_merges_and_resets(tmp_path):
    a = ArtifactCache(root=tmp_path, enabled=True)
    b = ArtifactCache(root=tmp_path, enabled=True)
    a.stats.hits, a.stats.misses = 3, 1
    b.stats.hits, b.stats.evictions = 2, 5
    a.flush_stats()
    b.flush_stats()
    totals = a.persisted_stats()
    assert totals["hits"] == 5
    assert totals["misses"] == 1
    assert totals["evictions"] == 5
    a.flush_stats()  # counters were reset: flushing again changes nothing
    assert a.persisted_stats() == totals


# -- configure_cache / atexit lifecycle (the stale-hook regression) --------------


def test_configure_cache_reregisters_atexit_hook(tmp_path, monkeypatch):
    """Reconfiguring must unregister the replaced cache's atexit hook and
    register the new one; before the fix the stale hook flushed a dead
    cache at exit while the live cache's counters were silently dropped."""
    import repro.analysis.cache as cache_mod

    registered, unregistered = [], []

    class FakeAtexit:
        @staticmethod
        def register(fn):
            registered.append(fn)
            return fn

        @staticmethod
        def unregister(fn):
            unregistered.append(fn)

    previous = get_cache()
    monkeypatch.setattr(cache_mod, "atexit", FakeAtexit)
    try:
        first = configure_cache(root=tmp_path / "a", enabled=True)
        assert registered[-1] == first.flush_stats
        assert unregistered[-1] == previous.flush_stats
        second = configure_cache(root=tmp_path / "b", enabled=True)
        assert unregistered[-1] == first.flush_stats
        assert registered[-1] == second.flush_stats
    finally:
        monkeypatch.undo()
        configure_cache(root=previous.root, enabled=previous.enabled)


def test_configure_cache_flushes_replaced_counters(tmp_path):
    import json

    previous = get_cache()
    try:
        cache = configure_cache(root=tmp_path, enabled=True)
        cache.get_or_create("test", {"k": 1}, lambda: "v")  # 1 miss + 1 store
        configure_cache(root=previous.root, enabled=previous.enabled)
        totals = json.loads((tmp_path / "stats.json").read_text())
        assert totals["misses"] == 1 and totals["stores"] == 1
    finally:
        configure_cache(root=previous.root, enabled=previous.enabled)


def test_configure_cache_can_skip_the_flush(tmp_path):
    """Engine workers reconfigure with flush_previous=False — the forked
    parent's counters must not leak into stats.json from every worker."""
    previous = get_cache()
    try:
        cache = configure_cache(root=tmp_path, enabled=True)
        cache.get_or_create("test", {"k": 1}, lambda: "v")
        configure_cache(
            root=previous.root, enabled=previous.enabled, flush_previous=False
        )
        assert not (tmp_path / "stats.json").exists()
    finally:
        configure_cache(root=previous.root, enabled=previous.enabled)


# -- falsy-zero iterations default (satellite regression) ------------------------


def test_explicit_zero_iterations_is_not_replaced_by_the_default():
    from repro.analysis.engine import _resolved_iterations
    from repro.kernels.suite import SUITE

    assert _resolved_iterations("ge", None) == SUITE["ge"].default_iterations
    assert SUITE["ge"].default_iterations != 0
    assert _resolved_iterations("ge", 0) == 0  # the old `or` default lost this
