"""Finding JSON schema round-trips (including the MC3xx model-checker
codes) and the docs/CLI/registry code catalogues stay in lock-step."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.verify import CODE_REGISTRY, Finding, describe_codes
from repro.verify.report import finding_from_dict, finding_to_dict

REPO = Path(__file__).resolve().parent.parent

_SAMPLES = [
    Finding(code="VER101", message="r3 wrong after resume", kernel="va",
            mechanism="ctxback", position=7, where="v3"),
    Finding(code="LNT203", message="dead save", kernel="mm",
            mechanism="ckpt", where="slot:4"),
    Finding(code="MC302", message="round 0 stuck in phase=signaled",
            kernel="km", mechanism="combined", position=1, where="round:0"),
    Finding(code="MC306", message="unordered ctx write", kernel="va",
            mechanism="ctxback", position=1, where="slot:2"),
    Finding(code="MC308", message="truncated", where="bounds"),
]


@pytest.mark.parametrize("finding", _SAMPLES, ids=lambda f: f.code)
def test_finding_round_trips_through_json(finding):
    wire = json.loads(json.dumps(finding_to_dict(finding)))
    back = finding_from_dict(wire)
    assert back == finding
    assert back.key == finding.key
    assert back.severity is finding.severity


def test_round_trip_derives_severity_from_registry():
    """An edited report cannot smuggle in a severity downgrade."""
    wire = finding_to_dict(_SAMPLES[0])
    wire["severity"] = "info"
    assert finding_from_dict(wire).severity.value == "error"


def test_unregistered_code_rejected():
    with pytest.raises(ValueError):
        finding_from_dict({"code": "MC999", "message": "bogus"})


# -- catalogue consistency --------------------------------------------------------

_CODE_RE = re.compile(r"\b(?:VER1|LNT2|MC3)\d{2}\b")


def test_design_doc_lists_every_registered_code():
    """DESIGN.md's finding-code tables and the registry agree exactly —
    a new code without documentation (or vice versa) fails here."""
    text = (REPO / "DESIGN.md").read_text(encoding="utf-8")
    documented = set(_CODE_RE.findall(text))
    assert documented == set(CODE_REGISTRY)


@pytest.mark.parametrize("subcommand", ["lint", "mc"])
def test_cli_codes_listing_matches_registry(subcommand, capsys):
    from repro.cli import main

    assert main([subcommand, "--codes"]) == 0
    out = capsys.readouterr().out
    assert out.strip() == describe_codes().strip()
    assert set(_CODE_RE.findall(out)) == set(CODE_REGISTRY)
