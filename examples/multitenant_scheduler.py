#!/usr/bin/env python
"""Multi-tenant GPU sharing: a priority scheduler built on the public API.

The paper's cloud scenario (§I): a shared GPU runs batch jobs; bursty
latency-sensitive requests must be served with QoS.  This example implements
a tiny temporal scheduler: batch kernels occupy the SM, high-priority
requests arrive at random-ish times, the scheduler preempts the batch block
under a chosen mechanism, "runs" the request (modelled as a fixed service
time), resumes the batch job, and accounts end-to-end request waiting time
and batch-job slowdown — the two sides of the paper's trade-off.

Run:  python examples/multitenant_scheduler.py [mechanism ...]
"""

import sys

from repro.kernels import SUITE
from repro.mechanisms import Chimera, expected_dyn_for, make_mechanism
from repro.sim import GPUConfig, run_preemption_experiment, run_reference

BATCH = "dc"
#: persistent-thread batch jobs run long (paper §II-B); give the block
#: enough iterations that its lifetime dwarfs a single context switch
BATCH_ITERATIONS = 300
REQUEST_SERVICE_CYCLES = 20_000  # the latency-sensitive kernel's runtime
ARRIVALS = (0.12, 0.38, 0.61, 0.83)  # request arrival points (progress)


def evaluate(mechanism_name: str, config, launch, expected_dyn) -> dict:
    if mechanism_name == "chimera":
        prepared = Chimera(expected_dyn=expected_dyn).prepare(
            launch.kernel, config
        )
    else:
        prepared = make_mechanism(mechanism_name).prepare(launch.kernel, config)

    waits, batch_costs = [], []
    for fraction in ARRIVALS:
        dyn = max(1, int(expected_dyn * fraction))
        result = run_preemption_experiment(
            launch.spec(),
            prepared,
            config,
            signal_dyn=dyn,
            resume_gap=REQUEST_SERVICE_CYCLES,
        )
        assert result.verified, (mechanism_name, fraction)
        waits.append(result.mean_latency)
        batch_costs.append(result.mean_resume)
    return {
        "wait_us": config.cycles_to_us(sum(waits) / len(waits)),
        "batch_us": config.cycles_to_us(sum(batch_costs) / len(batch_costs)),
    }


def main() -> None:
    mechanisms = sys.argv[1:] or [
        "baseline", "ckpt", "csdefer", "ctxback", "drain", "flush", "chimera",
    ]
    config = GPUConfig.radeon_vii()
    bench = SUITE[BATCH]
    launch = bench.launch(warp_size=config.warp_size, iterations=BATCH_ITERATIONS)
    expected = expected_dyn_for(launch.kernel, BATCH_ITERATIONS)

    clean = run_reference(launch.spec(), config)
    print(
        f"Batch job: {bench.table1.name}, "
        f"{config.cycles_to_us(clean.cycles):.0f} µs uninterrupted; "
        f"{len(ARRIVALS)} high-priority requests arrive during its run.\n"
    )
    print(f"{'mechanism':10s} {'request wait (µs)':>18s} {'batch resume cost (µs)':>24s}")
    for name in mechanisms:
        stats = evaluate(name, config, launch, expected)
        print(f"{name:10s} {stats['wait_us']:>18.1f} {stats['batch_us']:>24.1f}")

    print(
        "\nThe QoS story: waiting time is what the requests see; the resume"
        "\ncost (reload + re-execution/replay) is what the batch job pays."
        "\nDrain minimizes batch cost but makes requests wait out whole"
        "\nblocks; flush/ckpt invert that; CTXBack — and Chimera built on"
        "\ntop of it — keeps both small."
    )


if __name__ == "__main__":
    main()
