#!/usr/bin/env python
"""Multi-tenant GPU sharing: the serving layer over the public API.

The paper's cloud scenario (§I): a shared GPU fleet runs batch jobs;
bursty latency-sensitive requests must be served with QoS.  This example
drives :mod:`repro.serve` end to end — calibrate each mechanism's
preempt/resume costs with real cycle-level experiments, generate seeded
arrival traces of increasing burstiness, and serve them through the
preemptive priority scheduler.  The reported *wait* is true end-to-end
queueing delay (arrival → service start), not just the preemption
latency: an early version of this example dropped the queueing term,
which made burstier traffic look free.  With the queue accounted for,
mean waits grow monotonically with burstiness — requests that cluster
find the GPU busy with each other.

Run:  python examples/multitenant_scheduler.py [mechanism ...]
"""

import sys

from repro.serve import (
    DEFAULT_TENANTS,
    SERVE_MECHANISMS,
    TraceSpec,
    mean_service_us,
    mechanism_costs,
    shard_arrivals,
    simulate_shard,
)
from repro.sim import GPUConfig

BATCH = "dc"  # doitgen: a long-running, register-heavy batch tenant
BATCH_ITERATIONS = 40  # calibration kernel length (cached after first run)
REQUESTS = 5_000
LOAD = 0.6  # fraction of the GPU's service capacity
#: same seed, same mean rate — only the clustering changes
TRACES = (
    ("poisson", TraceSpec(kind="poisson", seed=11)),
    ("bursty x4", TraceSpec(kind="bursty", seed=11, burst_factor=4.0)),
    ("bursty x16", TraceSpec(kind="bursty", seed=11, burst_factor=16.0)),
)


def serve_trace(spec: TraceSpec, costs) -> dict:
    """Serve one trace on one GPU; return mean wait and p99 latency (µs)."""
    rate = LOAD / mean_service_us(DEFAULT_TENANTS)
    (shard,) = shard_arrivals(spec, REQUESTS, rate, DEFAULT_TENANTS, gpus=1)
    result = simulate_shard(shard, DEFAULT_TENANTS, costs)
    latencies = sorted(lat for _, lat in result.latencies)
    waits = [
        lat - DEFAULT_TENANTS[tenant].service_us
        for tenant, lat in result.latencies
    ]
    return {
        "mean_wait_us": sum(waits) / len(waits),
        "p99_us": latencies[-(-99 * len(latencies) // 100) - 1],
        "episodes": result.episodes,
    }


def main() -> None:
    mechanisms = tuple(sys.argv[1:] or SERVE_MECHANISMS)
    config = GPUConfig.radeon_vii()
    print(
        f"Calibrating {len(mechanisms)} mechanisms on batch kernel "
        f"{BATCH!r} ({BATCH_ITERATIONS} iterations)..."
    )
    costs = mechanism_costs(
        mechanisms, BATCH, config, iterations=BATCH_ITERATIONS, samples=1
    )

    print(
        f"\nServing {REQUESTS} requests at load {LOAD:.1f} on one GPU; "
        f"the same seed and mean rate per trace — only clustering changes.\n"
    )
    header = f"{'mechanism':10s}" + "".join(
        f" {name + ' wait':>16s}" for name, _ in TRACES
    ) + f" {'p99 @ x16 (µs)':>16s}"
    print(header)
    for name in mechanisms:
        cells = [serve_trace(spec, costs[name]) for _, spec in TRACES]
        waits = [cell["mean_wait_us"] for cell in cells]
        assert waits == sorted(waits), (
            f"{name}: waits must be monotone in burstiness, got {waits}"
        )
        print(
            f"{name:10s}"
            + "".join(f" {wait:>16.1f}" for wait in waits)
            + f" {cells[-1]['p99_us']:>16.1f}"
        )

    print(
        "\nThe QoS story: queueing delay compounds the preemption cost —"
        "\nburstier arrivals find the GPU busy with each other, so every"
        "\nmicrosecond of eviction latency is paid under contention."
        "\nCTXBack's cheap context switches keep the tail short even at x16."
    )


if __name__ == "__main__":
    main()
