#!/usr/bin/env python
"""A latency-sensitive job preempts a batch job on a shared GPU.

The paper's motivating scenario (§I): batch kernels written in the
persistent-thread style occupy the SM; an inference request arrives and
needs the GPU *now*.  We run the MM batch kernel, inject a preemption signal
mid-loop under each mechanism, and report what the inference request
experiences (waiting time = preemption latency) and what the batch job pays
(resume time + wasted work).

Run:  python examples/latency_sensitive_inference.py
"""

from repro.kernels import SUITE
from repro.mechanisms import make_mechanism
from repro.sim import GPUConfig, run_preemption_experiment

BATCH_KERNEL = "mm"
MECHANISMS = ("baseline", "live", "ckpt", "csdefer", "ctxback", "combined")


def main() -> None:
    config = GPUConfig.radeon_vii()
    bench = SUITE[BATCH_KERNEL]
    launch = bench.launch(warp_size=64, iterations=bench.default_iterations)
    spec = launch.spec()
    n = len(launch.kernel.program.instructions)
    signal = 4 * n + 9  # mid-loop, an arbitrary execution point

    print(
        f"Batch job: {bench.table1.name} ({bench.table1.abbrev}), "
        f"{launch.kernel.warps_per_block} warps, preempted mid-loop.\n"
    )
    print(
        f"{'mechanism':10s} {'wait (µs)':>10s} {'resume (µs)':>12s} "
        f"{'context':>9s} {'verified':>9s}"
    )
    for name in MECHANISMS:
        prepared = make_mechanism(name).prepare(launch.kernel, config)
        result = run_preemption_experiment(
            spec, prepared, config, signal_dyn=signal, resume_gap=3000
        )
        resume = (
            "n/a".rjust(12)
            if result.mean_resume is None
            else f"{config.cycles_to_us(result.mean_resume):12.1f}"
        )
        print(
            f"{name:10s} {config.cycles_to_us(result.mean_latency):10.1f} "
            f"{resume} "
            f"{result.mean_context_bytes / 1024:7.1f}KB "
            f"{str(result.verified):>9s}"
        )

    print(
        "\nReading the table: BASELINE makes the inference request wait for"
        "\nthe full allocation swap; CKPT releases the SM almost instantly"
        "\nbut the batch job replays up to 15 loop iterations on resume;"
        "\nCTXBack keeps both costs low — the paper's headline trade-off."
    )


if __name__ == "__main__":
    main()
