#!/usr/bin/env python
"""Compiler-explorer view of the CTXBack analysis on a benchmark kernel.

Dumps, for the DOT kernel's loop body: the per-instruction live context
(what LIVE would save), the flashback point CTXBack selects, the resulting
context size, and how many instructions resume re-executes — the raw
material behind Fig. 7.

Run:  python examples/compiler_explorer.py [kernel-key]
"""

import sys

from repro.compiler import analyze_liveness, build_cfg
from repro.ctxback import (
    META_BYTES,
    CtxBackConfig,
    FlashbackAnalyzer,
    baseline_context_bytes,
    lds_share_bytes,
    regs_bytes,
)
from repro.ctxback.osrb import apply_osrb
from repro.isa import RegisterFileSpec
from repro.kernels import SUITE


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "dot"
    bench = SUITE[key]
    spec = RegisterFileSpec(warp_size=64)
    kernel = bench.build(64)
    kernel, osrb_report = apply_osrb(kernel, spec)
    analyzer = FlashbackAnalyzer(
        kernel, CtxBackConfig(rf_spec=spec, enable_osrb=False)
    )

    cfg = build_cfg(kernel.program)
    liveness = analyze_liveness(kernel.program, cfg)
    loop = cfg.block_at(kernel.program.target_index("LOOP"))
    baseline = baseline_context_bytes(kernel, spec)
    overhead = lds_share_bytes(kernel) + META_BYTES  # charged by every plan

    print(f"{bench.table1.name} ({bench.table1.abbrev})")
    print(
        f"allocation: {kernel.vgprs_used} VGPRs, {kernel.sgprs_used} SGPRs, "
        f"{kernel.lds_bytes} B LDS -> BASELINE context {baseline} B/warp"
    )
    if osrb_report.count:
        print(f"OSRB inserted {osrb_report.count} scalar backup cop(ies)")
    print(f"\nloop body: positions {loop.start}..{loop.end - 1}\n")
    print(
        f"{'pos':>4s}  {'instruction':30s} {'live':>7s} {'ctxback':>8s} "
        f"{'fb@':>5s} {'reexec':>7s}"
    )
    for pos in loop.positions():
        instruction = kernel.program.instructions[pos]
        live_bytes = regs_bytes(liveness.live_in[pos], spec) + overhead
        plan = analyzer.plan_at(pos)
        print(
            f"{pos:>4d}  {str(instruction):30s} {live_bytes:>6d}B "
            f"{plan.context_bytes:>7d}B {plan.flashback_pos:>5d} "
            f"{plan.reexec_count:>7d}"
        )

    plans = [analyzer.plan_at(pos) for pos in loop.positions()]
    mean_ctx = sum(p.context_bytes for p in plans) / len(plans)
    mean_live = overhead + sum(
        regs_bytes(liveness.live_in[pos], spec) for pos in loop.positions()
    ) / len(loop)
    print(
        f"\nloop means: LIVE {mean_live:.0f} B ({mean_live / baseline:.0%} of "
        f"baseline), CTXBack {mean_ctx:.0f} B ({mean_ctx / baseline:.0%})"
    )


if __name__ == "__main__":
    main()
