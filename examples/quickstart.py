#!/usr/bin/env python
"""Quickstart: analyze a kernel with CTXBack and inspect the routines.

Builds the paper's Fig. 3 example, runs the flashback analysis for a
preemption signal at I4, and prints the dedicated preemption and resuming
routines — including the constructed inverse instruction (``v_sub``) that
recovers the overwritten operand at preemption time.

Run:  python examples/quickstart.py
"""

from repro.ctxback import (
    CtxBackConfig,
    FlashbackAnalyzer,
    baseline_context_bytes,
    live_context_bytes_at,
)
from repro.isa import Kernel, RegisterFileSpec, parse, serialize

# Paper Fig. 3, with stores appended so the interesting registers stay live.
ASSEMBLY = """
    v_xor v1, v0, v2        # I0: needs the OLD v0
    v_mul v3, v1, v2        # I1
    v_add v0, v0, v3        # I2: overwrites v0 (reversible!)
    v_mov v1, 0xF           # I3: overwrites v1
    global_store v4, v0, 0  # I4: signal arrives here
    global_store v4, v1, 4
    global_store v4, v2, 8
    global_store v4, v3, 12
    s_endpgm
"""

SIGNAL_POSITION = 4


def main() -> None:
    spec = RegisterFileSpec(warp_size=64)
    kernel = Kernel(
        "fig3", parse(ASSEMBLY), vgprs_used=8, sgprs_used=16, noalias=True
    )

    analyzer = FlashbackAnalyzer(kernel, CtxBackConfig(rf_spec=spec))
    plan = analyzer.plan_at(SIGNAL_POSITION)

    print("Kernel:")
    print(serialize(kernel.program))

    baseline = baseline_context_bytes(kernel, spec)
    live = live_context_bytes_at(kernel, SIGNAL_POSITION, spec)
    print(f"signal at position I{SIGNAL_POSITION}")
    print(f"  BASELINE context: {baseline:6d} bytes  (full allocation)")
    print(f"  LIVE context:     {live:6d} bytes  (live registers)")
    print(
        f"  CTXBack context:  {plan.context_bytes:6d} bytes  "
        f"(flashback to I{plan.flashback_pos}, "
        f"{plan.reexec_count} instructions re-executed on resume)"
    )

    print("\nDedicated preemption routine (note the v_sub reverting I2):")
    print(serialize(plan.preempt_routine))
    print("Dedicated resuming routine (re-executes I0, I1, I3):")
    print(serialize(plan.resume_routine))
    print(f"...then control returns to I{plan.resume_pc}.")


if __name__ == "__main__":
    main()
