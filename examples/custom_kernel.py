#!/usr/bin/env python
"""Bring your own kernel: write assembly, run it, preempt it, verify it.

Shows the full user workflow on a kernel that is *not* part of the
benchmark suite: a fused scale-and-accumulate loop written directly in the
textual ISA, launched on the simulator, preempted under CTXBack at an
arbitrary point, and checked bit-exact against an uninterrupted run.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.isa import Kernel, parse
from repro.mechanisms import make_mechanism
from repro.sim import GPUConfig, LaunchSpec, run_preemption_experiment, run_reference

ASSEMBLY = """
    # ABI: s0 = in base, s1 = out base, s2 = iterations, s3 = stride bytes
    v_lshl v1, v0, 0x2
    v_add  v2, v1, s0        # input pointer
    v_add  v3, v1, s1        # output pointer
    v_mov  v8, 0             # running checksum (persistent)
    s_mov  s4, 0
LOOP:
    global_load v4, v2, 0
    global_load v5, v2, 0x100
    v_add  v2, v2, s3        # early pointer bump: revertible
    v_mul  v6, v4, 5
    v_xor  v7, v6, v5
    v_add  v8, v8, v7        # accumulate checksum
    global_store v3, v7, 0
    v_add  v3, v3, s3
    s_add  s4, s4, 1
    s_cmp_lt s4, s2
    s_cbranch_scc1 LOOP
    global_store v3, v8, 0   # final checksum
    s_endpgm
"""

ITERATIONS = 24
IN_BASE, OUT_BASE = 0x10000, 0x80000


def main() -> None:
    config = GPUConfig.small(warp_size=16)
    kernel = Kernel(
        "fused_scale",
        parse(ASSEMBLY),
        vgprs_used=12,
        sgprs_used=8,
        noalias=True,
        warps_per_block=2,
    )

    warp_size = config.warp_size
    span = (ITERATIONS + 2) * warp_size * 4 + 0x100

    def setup_memory(memory):
        memory.store_array(
            IN_BASE, (np.arange(4096, dtype=np.uint32) * 2654435761) >> 16
        )

    def setup_warp(state, index):
        state.vregs[0, :] = np.arange(warp_size, dtype=np.uint32)
        state.sregs[0] = IN_BASE + index * span
        state.sregs[1] = OUT_BASE + index * span
        state.sregs[2] = ITERATIONS
        state.sregs[3] = warp_size * 4
        state.sregs[7] = 0

    launch = LaunchSpec(
        kernel=kernel, setup_memory=setup_memory, setup_warp=setup_warp
    )

    reference = run_reference(launch, config)
    print(f"uninterrupted run: {reference.cycles} cycles")

    prepared = make_mechanism("ctxback").prepare(kernel, config)
    for signal in (7, 40, 111, 230):
        result = run_preemption_experiment(
            launch, prepared, config, signal_dyn=signal, resume_gap=500
        )
        m = result.measurements[0]
        print(
            f"signal @ dyn {signal:3d} (pc {m.signal_pc:2d}): "
            f"flashback to {m.flashback_pos}, context {m.context_bytes} B, "
            f"latency {m.latency_cycles} cyc, resume {m.resume_cycles} cyc, "
            f"memory identical: {result.verified}"
        )


if __name__ == "__main__":
    main()
