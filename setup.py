"""Legacy shim: lets ``pip install -e .`` work offline (no `wheel` package).

Metadata lives in pyproject.toml; this only enables ``setup.py develop``.
"""

from setuptools import setup

setup()
