"""Fig. 10: runtime overhead of the instrumentation (no preemption).

Paper: CKPT's periodic checkpoint stores cost 130 % on average (checkpoint
interval 16, worst for kernels whose checkpoint is large relative to their
per-iteration work); CTXBack's only overhead is OSRB's register copies —
0.41 % on average, 0.35 % on BLAS+DL.  Our memory-bound iterations dilute
the 1-cycle backup copies further (<0.1 %); both are "negligible" in the
paper's sense, and CKPT vs CTXBack stays orders of magnitude apart.
"""

import statistics

from repro.analysis import fig10_runtime_overhead


def test_fig10_runtime_overhead(benchmark, keys):
    data = benchmark.pedantic(
        lambda: fig10_runtime_overhead(keys=keys), rounds=1, iterations=1
    )
    print()
    print(f"{'':6s}{'ckpt':>10s}{'ctxback':>10s}")
    for row in data.rows:
        print(
            f"{row.abbrev:6s}{100 * row.normalized['ckpt']:>9.1f}%"
            f"{100 * row.normalized['ctxback']:>9.3f}%"
        )
    ckpt_mean = 100 * data.mean("ckpt")
    ctx_mean = 100 * data.mean("ctxback")
    print(f"{'MEAN':6s}{ckpt_mean:>9.1f}%{ctx_mean:>9.3f}%")

    for row in data.rows:
        assert row.normalized["ckpt"] > row.normalized["ctxback"], row.key
        assert row.normalized["ctxback"] >= -0.001, row.key

    if keys is None:
        # CKPT: substantial overhead, highly kernel-dependent (paper: 130%
        # average, ~400% worst case)
        assert ckpt_mean > 20
        assert max(100 * row.normalized["ckpt"] for row in data.rows) > 100
        # CTXBack: negligible (paper 0.41%)
        assert ctx_mean < 1.0
        # OSRB fired on at least some kernels (nonzero overhead somewhere)
        assert any(row.normalized["ctxback"] > 0 for row in data.rows)
        # the paper's ratio claim: CTXBack's overhead is a tiny fraction of
        # CKPT's (abstract: 0.33% of CKPT's)
        assert ctx_mean / ckpt_mean < 0.02
        # kernels with little memory work per iteration suffer most under
        # CKPT (paper: "checkpoint size relatively large compared with the
        # occupied resources")
        km = next(row for row in data.rows if row.key == "km")
        assert 100 * km.normalized["ckpt"] > statistics.median(
            100 * row.normalized["ckpt"] for row in data.rows
        )
