"""Ablation: contribution of the three CTXBack techniques (§III-B/C/D).

Not a paper figure — the design-choice study DESIGN.md calls out.  Toggles
the relaxed flashback-point condition, instruction reverting and on-chip
scalar register backup independently and reports the context size each
variant achieves.
"""

from repro.analysis import ablation_techniques, render_figure


def test_ablation_technique_contributions(benchmark, keys):
    data = benchmark.pedantic(
        lambda: ablation_techniques(keys=keys), rounds=1, iterations=1
    )
    print()
    print(render_figure(data))

    for row in data.rows:
        # the full technique set is never worse than any ablated variant
        full = row.normalized["full"]
        for variant, value in row.normalized.items():
            assert full <= value + 1e-9, (row.key, variant)
        # dropping everything is never better than dropping one thing
        assert row.normalized["none"] >= row.normalized["no_reverting"] - 1e-9

    if keys is None:
        # each technique contributes on at least one kernel
        assert any(
            row.normalized["no_relaxed"] > row.normalized["full"] + 1e-6
            for row in data.rows
        ), "relaxed condition never mattered"
        assert any(
            row.normalized["no_reverting"] > row.normalized["full"] + 1e-6
            for row in data.rows
        ), "reverting never mattered"
        assert any(
            row.normalized["no_osrb"] > row.normalized["full"] + 1e-6
            for row in data.rows
        ), "OSRB never mattered"
