"""Chaos-serving benchmark: the fleet fault model under load.

Runs the :mod:`repro.serve.resilience` pipeline — fleet fault schedule,
failover planning with phase-1 probe simulations, resilient per-GPU
scheduling, oracle audit — through two scenarios and attaches the
headline failure-regime numbers to ``BENCH_engine.json``:

- ``crash``: a fail-stop GPU loss while hosting work, measuring
  snapshot-failover recovery latency and cadence-checkpoint overhead;
- ``mixed``: crash + persistent degrade + queue drop under load 0.8,
  measuring availability and overload shedding.

Shape assertions carry the paper's context-size argument into the
failure regime: CTXBack's smaller snapshot must checkpoint and recover
cheaper than BASELINE.
"""

from __future__ import annotations

import time

from repro.analysis import ExperimentEngine
from repro.serve import ResilienceKnobs, TraceSpec, run_serve_chaos

REQUESTS = 20_000
GPUS = 4
MECHANISMS = ("baseline", "ckpt", "ctxback")


def _run(engine: ExperimentEngine, scenario: str, load: float) -> dict:
    return run_serve_chaos(
        MECHANISMS,
        scenario=scenario,
        trace=TraceSpec(kind="bursty", seed=0),
        loads=(load,),
        requests=REQUESTS,
        gpus=GPUS,
        iterations=40,
        engine=engine,
        knobs=ResilienceKnobs(ckpt_cadence_us=2000.0),
    )


def charged_ckpt_us(cell: dict) -> float:
    """Price of one charged checkpoint.  Total overhead also depends on
    how often the batch job is live (evicted checkpoints are free), so
    this is the apples-to-apples number."""
    charged = cell["checkpoints"]["taken"] - cell["checkpoints"]["free"]
    return cell["checkpoints"]["overhead_us"] / max(charged, 1)


def test_serve_chaos_crash_and_mixed(record_result):
    engine = ExperimentEngine()
    started = time.perf_counter()
    crash = _run(engine, "crash", 0.6)
    mixed = _run(engine, "mixed", 0.8)
    wall = time.perf_counter() - started
    assert crash["oracle"]["ok"], crash["oracle"]
    assert mixed["oracle"]["ok"], mixed["oracle"]

    crash_cells = {c["mechanism"]: c for c in crash["results"]}
    mixed_cells = {c["mechanism"]: c for c in mixed["results"]}
    payload = {
        "requests_total": REQUESTS * len(MECHANISMS) * 2,
        "wall_s": round(wall, 3),
        "snapshot_bytes": crash["chaos"]["snapshot_bytes"],
        "crash": {
            mechanism: {
                "failovers": cell["failovers"],
                "recovery_p99_us": cell["recovery_us"]["p99"],
                "lost_progress_us": cell["recovery_us"]["lost_progress"],
                "charged_ckpt_us": round(charged_ckpt_us(cell), 3),
            }
            for mechanism, cell in crash_cells.items()
        },
        "mixed": {
            mechanism: {
                "availability": cell["availability"],
                "shed": cell["shed"],
                "retries": cell["retries"],
            }
            for mechanism, cell in mixed_cells.items()
        },
    }
    record_result(serve_chaos=payload)

    print()
    print(
        f"chaos-served {payload['requests_total']} requests in {wall:.1f}s "
        f"({GPUS} GPUs, scenarios crash+mixed)"
    )
    for mechanism in MECHANISMS:
        c, m = crash_cells[mechanism], mixed_cells[mechanism]
        print(
            f"  {mechanism:10s} rec p99 {c['recovery_us']['p99']:>9.1f} µs  "
            f"ckpt {charged_ckpt_us(c):>7.1f} µs  "
            f"avail {m['availability'] * 100:>6.2f}%  shed {m['shed']:>4d}"
        )

    # the failure-regime headline: a smaller context checkpoints and
    # recovers cheaper
    baseline, ctxback = crash_cells["baseline"], crash_cells["ctxback"]
    assert (
        crash["chaos"]["snapshot_bytes"]["ctxback"]
        < crash["chaos"]["snapshot_bytes"]["baseline"]
    )
    assert ctxback["failovers"] >= 1  # the crash actually cost something
    assert charged_ckpt_us(ctxback) < charged_ckpt_us(baseline)
    assert ctxback["recovery_us"]["p99"] <= baseline["recovery_us"]["p99"]
    # overload is shed, not queued without bound: availability holds a
    # floor even under crash+degrade+drop at load 0.8
    for cell in mixed_cells.values():
        assert cell["availability"] >= 0.85
        assert cell["shed"] > 0
