"""The abstract's headline numbers, regenerated in one sweep.

Paper: context −61.0 % (1.09× the minimum possible), preemption latency
−63.1 %, resuming time −50.0 %, runtime overhead 0.41 %; CS-Defer resumes
−65.6 % but preempts 1.35× slower than CTXBack.
"""

from repro.analysis import headline, render_headline


def test_headline_numbers(benchmark, keys, samples):
    result = benchmark.pedantic(
        lambda: headline(keys=keys, samples=samples), rounds=1, iterations=1
    )
    print()
    print(render_headline(result))

    if keys is None:
        assert 50 <= result.context_reduction_pct <= 75  # paper 61.0
        assert 1.0 <= result.context_vs_min <= 1.2  # paper 1.09
        assert 50 <= result.preempt_reduction_pct <= 75  # paper 63.1
        assert 40 <= result.resume_reduction_pct <= 70  # paper 50.0
        assert result.overhead_pct < 1.0  # paper 0.41
        assert result.csdefer_latency_vs_ctxback > 1.0  # paper 1.35
        assert 55 <= result.csdefer_resume_reduction_pct <= 75  # paper 65.6
