"""Table I: per-kernel resources + BASELINE preempt/resume times (µs).

Paper reference: preemption 74.9-327.4 µs, resume 57.8-283.1 µs across the
twelve kernels, resume shorter than preemption thanks to better latency
hiding.  The calibration (GPUConfig.radeon_vii) targets the same band and
per-kernel ordering; EXPERIMENTS.md records the per-row comparison.
"""

from repro.analysis import render_table1, table1_experiment


def test_table1_benchmark_specification(benchmark, keys):
    result = benchmark.pedantic(
        lambda: table1_experiment(keys=keys), rounds=1, iterations=1
    )
    print()
    print(render_table1(result))

    for row in result.rows:
        paper = row["paper"]
        # band membership: within the paper's overall measurement range
        assert 20 <= row["preempt_us"] <= 520, row["key"]
        # per-row agreement within 2x (the paper itself notes times are not
        # strictly proportional to occupied resources)
        assert 0.5 <= row["preempt_us"] / paper.preempt_us <= 2.0, row["key"]
        assert 0.4 <= row["resume_us"] / paper.resume_us <= 2.0, row["key"]
        # resume benefits from better memory latency hiding
        assert row["resume_us"] < row["preempt_us"], row["key"]

    if keys is None:
        measured = {row["key"]: row["preempt_us"] for row in result.rows}
        # the heavyweights stay the heavyweights
        assert measured["km"] == max(measured.values())
        assert measured["lrn"] == min(measured.values()) or measured["lrn"] < 100
