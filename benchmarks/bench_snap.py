"""Snapshot benchmark: blocking vs speculative checkpoint pause.

Both paths snapshot the same simulated point — the deterministic
pre-resume observation where every target warp has released the SM.  The
blocking path stops the world there and serializes everything; the
speculative path (:class:`repro.snap.SpeculativeCheckpoint`) takes its
base memory copy early, lets execution run ahead while recording a
:class:`~repro.sim.memory.TrackedMemory` write epoch, and pays only the
commit critical section (patch extraction + validation + warp capture)
at the capture point.

Shape assertions: the speculative commit must validate (no fallback),
its pause must be measurably shorter than the blocking pause, and the
base+patch image must reconstruct device memory bit-identically to the
stop-the-world image taken at the same point.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels import SUITE
from repro.mechanisms import make_mechanism
from repro.sim import GPUConfig, run_preemption_experiment
from repro.sim.memory import DeviceMemory, TrackedMemory
from repro.snap import SpeculativeCheckpoint, capture_snapshot, restore_memory

# va streams stores through the run-ahead window, so the epoch patch is
# non-empty while staying far smaller than the base image
KEY = "va"
MECHANISM = "ctxback"
ROUNDS = 3


def _at_capture_point(sm, controller, state) -> bool:
    return (
        not state["resumed"]
        and state["resume_at"] is not None
        and sm.cycle >= state["resume_at"]
        and controller.all_evicted()
    )


def _run(mode: str) -> dict:
    config = GPUConfig.radeon_vii()
    bench = SUITE[KEY]
    launch = bench.launch(
        warp_size=config.warp_size, iterations=bench.default_iterations
    )
    prepared = make_mechanism(MECHANISM).prepare(launch.kernel, config)
    n = len(launch.kernel.program.instructions)
    out: dict = {"calls": 0}

    def hook(sm, controller, target_warps, state) -> None:
        out["calls"] += 1
        if mode == "speculative":
            if out["calls"] == 1:
                ckpt = SpeculativeCheckpoint(sm, controller, label=KEY)
                ckpt.begin()
                out["ckpt"] = ckpt
            elif "report" not in out and _at_capture_point(
                sm, controller, state
            ):
                out["report"] = out["ckpt"].commit(loop=state)
        elif "pause_s" not in out and _at_capture_point(sm, controller, state):
            started = time.perf_counter()
            out["payload"] = capture_snapshot(
                sm, controller, loop=state, label=KEY
            )
            out["pause_s"] = time.perf_counter() - started

    run_preemption_experiment(
        launch.spec(), prepared, config, 3 * n + 7,
        verify=False, memory=TrackedMemory(), loop_hook=hook,
    )
    return out


def _memory_words(payload: dict) -> np.ndarray:
    memory = DeviceMemory(size_bytes=payload["memory"]["size_bytes"])
    restore_memory(payload["memory"], memory)
    return memory._words


def test_snap_speculative_vs_blocking(record_result):
    blocking_pauses: list[float] = []
    speculative_pauses: list[float] = []
    blocking = speculative = None
    for _ in range(ROUNDS):
        blocking = _run("blocking")
        speculative = _run("speculative")
        blocking_pauses.append(blocking["pause_s"])
        report = speculative["report"]
        assert report.mode == "speculative", "validation fell back"
        assert report.validated
        speculative_pauses.append(report.pause_s)

    report = speculative["report"]
    # the base+patch image reconstructs the same memory the blocking
    # snapshot saw at the same simulated point
    assert np.array_equal(
        _memory_words(report.payload), _memory_words(blocking["payload"])
    )
    # the run-ahead window dirtied something, and far less than the base
    assert 0 < report.patch_words < report.base_words

    block_s = min(blocking_pauses)
    spec_s = min(speculative_pauses)
    print()
    print(
        f"stop-the-world pause ({KEY}/{MECHANISM}): "
        f"blocking {block_s * 1e3:.2f} ms, "
        f"speculative {spec_s * 1e3:.2f} ms "
        f"(patch {report.patch_words} words, base {report.base_words})"
    )
    record_result(
        blocking_pause_ms=round(block_s * 1e3, 3),
        speculative_pause_ms=round(spec_s * 1e3, 3),
        patch_words=report.patch_words,
        base_words=report.base_words,
    )
    # the headline: the commit critical section undercuts the blocking pause
    assert spec_s < block_s, (spec_s, block_s)
