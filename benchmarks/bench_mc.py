"""Model-checker throughput: exhaust one bounded (kernel, mechanism)
cell and record exploration volume per second.

Not a paper figure — the checker has to stay fast enough that CI's
`mc-smoke` matrix and the tier-1 bounded tests remain routine.  The bench
bypasses the artifact cache (a fresh explore per run) so the recorded
time is real exploration, not a cache hit.
"""

from repro.kernels.suite import SUITE
from repro.mc import McModel, McOptions, clean_reference, explore
from repro.mechanisms import make_mechanism
from repro.sim import GPUConfig


def _explore_cell(key: str, mechanism: str, options: McOptions):
    config = GPUConfig.small(4)
    launch = SUITE[key].launch(
        warp_size=config.warp_size, iterations=2, num_warps=options.warps
    )
    prepared = make_mechanism(mechanism).prepare(launch.kernel, config)
    spec = launch.spec()
    reference = clean_reference(prepared, spec, config)

    def factory():
        return McModel(
            prepared, spec, config, options, kernel=key, mechanism=mechanism
        )

    return explore(factory, reference, options, kernel=key, mechanism=mechanism)


def test_mc_exploration_throughput(benchmark):
    options = McOptions(warps=2, rounds=1)
    result = benchmark.pedantic(
        lambda: _explore_cell("va", "ctxback", options), rounds=1, iterations=1
    )
    elapsed = benchmark.stats.stats.mean
    print()
    print(
        f"va/ctxback bounded cell: {result.states} states, "
        f"{result.terminals} terminals, {result.runs} runs, "
        f"{result.transitions} transitions in {elapsed:.2f}s "
        f"({result.transitions / max(elapsed, 1e-9):,.0f} transitions/s)"
    )
    assert result.findings == []
    assert not result.truncated
    assert result.terminals >= 1
