"""Fig. 7: normalized context size (BASELINE = 1).

Paper: LIVE −37.8 %, CS-Defer −62.07 %, CTXBack −61.03 %, combined −62.09 %;
CTXBack is 1.09× the minimum possible size (the CKPT dash line); BLAS+DL
subset −68.8 % for CTXBack; HS barely improves (LDS dominates §V-A).
"""

from repro.analysis import fig7_context_size, render_fig7_summary
from repro.kernels import BLAS_DL_KEYS


def test_fig7_normalized_context_size(benchmark, keys):
    data = benchmark.pedantic(
        lambda: fig7_context_size(keys=keys), rounds=1, iterations=1
    )
    print()
    print(render_fig7_summary(data))

    # per-kernel shape: ctxback <= csdefer-ish <= live; min <= ctxback
    for row in data.rows:
        assert row.normalized["ctxback"] <= row.normalized["live"] + 1e-9, row.key
        assert row.normalized["ckpt"] <= row.normalized["ctxback"] + 1e-9, row.key
        assert row.normalized["combined"] <= row.normalized["ctxback"] + 1e-9

    if keys is None:
        # headline factors (paper: 61.0 / 37.8 / 62.1; tolerance: shape)
        assert 50 <= data.mean_reduction_pct("ctxback") <= 75
        assert 35 <= data.mean_reduction_pct("live") <= 60
        assert data.mean_reduction_pct("ctxback") > data.mean_reduction_pct("live")
        assert abs(
            data.mean_reduction_pct("csdefer") - data.mean_reduction_pct("ctxback")
        ) < 5
        # CTXBack sits just above the minimum possible size (paper 1.09x)
        assert 1.0 <= data.mean("ctxback") / data.mean("ckpt") <= 1.2
        # BLAS+DL subset reduces more than the overall mean (paper 68.8%)
        blas_dl = 100 * (1 - data.subset_mean("ctxback", BLAS_DL_KEYS))
        assert blas_dl > data.mean_reduction_pct("ctxback")
        # HS is the stubborn one: LDS dominates, nothing helps much
        hs = next(row for row in data.rows if row.key == "hs")
        assert hs.normalized["ctxback"] == max(
            row.normalized["ctxback"] for row in data.rows
        )
