"""Benchmark-suite configuration.

Environment knobs:

* ``REPRO_BENCH_KEYS``  — comma-separated benchmark subset (default: all 12);
* ``REPRO_BENCH_SAMPLES`` — signal points per kernel for the timing sweeps
  (default 3; the paper effectively averages over arbitrary signal points);
* ``REPRO_JOBS``        — worker processes for the experiment engine
  (default 1: serial, in-process);
* ``REPRO_UNIT_TIMEOUT``/``REPRO_UNIT_RETRIES``/``REPRO_FAILURE_POLICY`` —
  engine fault tolerance: per-unit timeout seconds, pool re-attempts, and
  ``fail-fast`` vs ``collect`` (see :mod:`repro.analysis.engine`);
* ``REPRO_CACHE_DIR``/``REPRO_CACHE``/``REPRO_CACHE_MAX_BYTES`` —
  artifact-cache location / kill switch / LRU size cap (see
  :mod:`repro.analysis.cache`).

Every bench prints the regenerated table (run with ``-s`` to see it inline)
and asserts the paper's *shape*: who wins and by roughly what factor.

Each bench's wall time, engine worker count and cache hit/miss delta are
recorded and written to ``BENCH_engine.json`` in the repo root at session
end, so cold-vs-warm cache runs can be compared (see the CI smoke job and
``benchmarks/engine_smoke.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

BENCH_REPORT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

_records: list[dict] = []


def bench_keys() -> list[str] | None:
    raw = os.environ.get("REPRO_BENCH_KEYS", "").strip()
    if not raw:
        return None  # all benchmarks
    return [key.strip() for key in raw.split(",") if key.strip()]


def bench_samples() -> int:
    return int(os.environ.get("REPRO_BENCH_SAMPLES", "3"))


@pytest.fixture(scope="session")
def keys():
    return bench_keys()


@pytest.fixture(scope="session")
def samples():
    return bench_samples()


@pytest.fixture(autouse=True)
def _engine_timing(request):
    """Record wall time + artifact-cache traffic for every bench."""
    from repro.analysis import default_jobs, get_cache

    cache = get_cache()
    before = cache.stats.snapshot()
    started = time.perf_counter()
    yield
    wall = time.perf_counter() - started
    delta = cache.stats.delta(before)
    record = {
        "bench": request.node.name,
        "wall_s": round(wall, 3),
        "jobs": default_jobs(),
        "cache": delta.as_dict(),
    }
    # benches may attach structured results (e.g. the core-comparison
    # numbers from bench_cores.py) via the ``record_result`` fixture
    record.update(getattr(request.node, "_bench_payload", {}))
    _records.append(record)


@pytest.fixture
def record_result(request):
    """Attach extra key/value pairs to this bench's BENCH_engine.json row."""
    payload: dict = {}
    request.node._bench_payload = payload

    def _record(**fields) -> None:
        payload.update(fields)

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _records:
        return
    lookups = sum(r["cache"]["hits"] + r["cache"]["misses"] for r in _records)
    hits = sum(r["cache"]["hits"] for r in _records)
    report = {
        "keys": bench_keys(),
        "samples": bench_samples(),
        "jobs": _records[0]["jobs"],
        "total_wall_s": round(sum(r["wall_s"] for r in _records), 3),
        "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "benches": _records,
    }
    try:
        BENCH_REPORT.write_text(json.dumps(report, indent=2) + "\n")
    except OSError:
        pass
