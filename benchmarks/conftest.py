"""Benchmark-suite configuration.

Environment knobs:

* ``REPRO_BENCH_KEYS``  — comma-separated benchmark subset (default: all 12);
* ``REPRO_BENCH_SAMPLES`` — signal points per kernel for the timing sweeps
  (default 3; the paper effectively averages over arbitrary signal points).

Every bench prints the regenerated table (run with ``-s`` to see it inline)
and asserts the paper's *shape*: who wins and by roughly what factor.
"""

from __future__ import annotations

import os

import pytest


def bench_keys() -> list[str] | None:
    raw = os.environ.get("REPRO_BENCH_KEYS", "").strip()
    if not raw:
        return None  # all benchmarks
    return [key.strip() for key in raw.split(",") if key.strip()]


def bench_samples() -> int:
    return int(os.environ.get("REPRO_BENCH_SAMPLES", "3"))


@pytest.fixture(scope="session")
def keys():
    return bench_keys()


@pytest.fixture(scope="session")
def samples():
    return bench_samples()
