"""Routine storage (paper §IV-A): "only several preemption routines need to
be transferred and stored, whose cost is negligible."

Measures, per kernel, how many distinct preemption routines the CTXBack pass
actually ships (instructions sharing a flashback point share one routine)
and their binary footprint versus the kernel's own code.
"""

from repro.analysis import prepared_for
from repro.ctxback import share_routines
from repro.isa import encoded_size
from repro.kernels import SUITE
from repro.sim import GPUConfig


def run_storage(keys):
    config = GPUConfig.radeon_vii()
    rows = []
    for key in keys or sorted(SUITE):
        prepared = prepared_for(key, "ctxback", config)
        stats = share_routines(prepared.plans)
        unique = {
            id(plan.preempt_routine): plan.preempt_routine
            for plan in prepared.plans.values()
        }
        routine_bytes = sum(encoded_size(p) for p in unique.values())
        kernel_bytes = encoded_size(prepared.kernel.program)
        rows.append(
            {
                "key": key,
                "positions": stats.positions,
                "unique": stats.unique_preempt,
                "factor": stats.sharing_factor,
                "routine_bytes": routine_bytes,
                "kernel_bytes": kernel_bytes,
            }
        )
    return rows


def test_routine_storage_is_negligible(benchmark, keys):
    rows = benchmark.pedantic(lambda: run_storage(keys), rounds=1, iterations=1)
    print()
    print(
        f"{'':6s}{'positions':>10s}{'routines':>10s}{'share':>7s}"
        f"{'bytes':>8s}{'vs kernel':>10s}"
    )
    for row in rows:
        ratio = row["routine_bytes"] / row["kernel_bytes"]
        print(
            f"{row['key']:6s}{row['positions']:>10d}{row['unique']:>10d}"
            f"{row['factor']:>6.1f}x{row['routine_bytes']:>8d}{ratio:>9.1f}x"
        )

    for row in rows:
        # sharing collapses the per-instruction routines substantially
        assert row["unique"] < row["positions"], row["key"]
        assert row["factor"] > 1.2, row["key"]
        # the stored routines stay the same order of magnitude as the kernel
        # itself ("negligible" next to kernel + data transfers)
        assert row["routine_bytes"] < 25 * row["kernel_bytes"], row["key"]
