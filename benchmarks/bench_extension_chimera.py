"""Extension: Chimera-style collaborative preemption with CTXBack inside.

Paper §VI: "CTXBack ... can be integrated into Chimera to replace the
traditional context switching mechanism."  This bench sweeps the signal
across a thread block's lifetime and compares pure flush / drain / CTXBack
against the progress-aware three-way choice: Chimera should track the best
latency at the extremes (flush early, drain late) while bounding the wasted
work + wait in the middle with CTXBack's context switch.
"""

import statistics

from repro.kernels import SUITE
from repro.mechanisms import Chimera, expected_dyn_for, make_mechanism
from repro.sim import GPUConfig, run_preemption_experiment

KERNEL = "mm"
PROGRESS_POINTS = (0.05, 0.3, 0.5, 0.7, 0.95)


def run_sweep():
    config = GPUConfig.radeon_vii_contended()
    bench = SUITE[KERNEL]
    launch = bench.launch(
        warp_size=config.warp_size, iterations=bench.default_iterations
    )
    spec = launch.spec()
    expected = expected_dyn_for(launch.kernel, bench.default_iterations)
    prepared = {
        name: make_mechanism(name).prepare(launch.kernel, config)
        for name in ("flush", "drain", "ctxback")
    }
    prepared["chimera"] = Chimera(expected_dyn=expected).prepare(
        launch.kernel, config
    )
    rows = []
    for fraction in PROGRESS_POINTS:
        dyn = max(1, int(expected * fraction))
        row = {"progress": fraction}
        for name, mech_prepared in prepared.items():
            result = run_preemption_experiment(
                spec, mech_prepared, config, signal_dyn=dyn, resume_gap=2000
            )
            assert result.verified, (name, fraction)
            row[name] = {
                "latency": result.mean_latency,
                "resume": result.mean_resume,
            }
        rows.append(row)
    return rows


def test_chimera_bounds_both_costs(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(f"{'progress':>9s}" + "".join(
        f"{name + ' lat':>14s}{name + ' res':>14s}"
        for name in ("flush", "drain", "ctxback", "chimera")
    ))
    for row in rows:
        cells = "".join(
            f"{row[name]['latency']:>14.0f}{row[name]['resume']:>14.0f}"
            for name in ("flush", "drain", "ctxback", "chimera")
        )
        print(f"{row['progress']:>9.2f}" + cells)

    for row in rows:
        progress = row["progress"]
        chimera = row["chimera"]
        if progress <= 0.1:
            # early: flush-like (instant release, cheap replay)
            assert chimera["latency"] <= row["ctxback"]["latency"]
        elif progress >= 0.9:
            # late: drain-like (short wait, nothing to resume)
            assert chimera["resume"] == 0
            assert chimera["latency"] <= row["ctxback"]["latency"] * 1.5
        else:
            # middle: CTXBack's bounded pair of costs
            assert chimera["latency"] == row["ctxback"]["latency"]
            assert chimera["resume"] == row["ctxback"]["resume"]

    # pure drain's early-signal wait is the pathology Chimera avoids
    early = rows[0]
    assert early["drain"]["latency"] > 5 * early["chimera"]["latency"]
    # pure flush's late-signal replay is the other pathology
    late = rows[-1]
    assert late["flush"]["resume"] > 5 * max(1.0, late["chimera"]["resume"])
