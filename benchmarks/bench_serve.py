"""Serving-layer benchmark: the full six-mechanism fleet under load.

Runs the :mod:`repro.serve` pipeline — calibration through the experiment
engine, seeded trace generation, per-GPU preemptive scheduling, report
aggregation — at two load levels and attaches the headline numbers
(p99 per mechanism, SLO-violation rates, overhead fractions, requests/s
of the scheduler itself) to ``BENCH_engine.json``.

Shape assertions mirror the paper's serving argument: CTXBack's cheap
context switches must beat BASELINE on p99 and SLO violations at every
load level, and overhead fractions must order the same way the calibrated
costs do.
"""

from __future__ import annotations

import time

from repro.analysis import ExperimentEngine
from repro.serve import SERVE_MECHANISMS, TraceSpec, run_serve

REQUESTS = 20_000
LOADS = (0.5, 0.8)
GPUS = 4


def _cell(report: dict, mechanism: str, load: float) -> dict:
    for cell in report["results"]:
        if cell["mechanism"] == mechanism and cell["load"] == load:
            return cell
    raise KeyError((mechanism, load))


def test_serve_six_mechanisms(record_result):
    engine = ExperimentEngine()
    started = time.perf_counter()
    report = run_serve(
        SERVE_MECHANISMS,
        trace=TraceSpec(kind="bursty", seed=0),
        loads=LOADS,
        requests=REQUESTS,
        gpus=GPUS,
        iterations=40,
        engine=engine,
    )
    wall = time.perf_counter() - started

    total_requests = REQUESTS * len(SERVE_MECHANISMS) * len(LOADS)
    payload = {
        "requests_total": total_requests,
        "scheduler_rps": round(total_requests / wall),
        "costs": report["costs"],
        "cells": {
            f"{mechanism}@{load}": {
                "p99_us": _cell(report, mechanism, load)["latency_us"]["p99"],
                "slo_violation_rate": _cell(report, mechanism, load)[
                    "slo_violation_rate"
                ],
                "overhead_frac": _cell(report, mechanism, load)["overhead_frac"],
            }
            for mechanism in SERVE_MECHANISMS
            for load in LOADS
        },
    }
    record_result(serve=payload)

    print()
    print(
        f"served {total_requests} requests in {wall:.1f}s "
        f"({payload['scheduler_rps']:,} req/s through the scheduler)"
    )
    for load in LOADS:
        for mechanism in SERVE_MECHANISMS:
            cell = _cell(report, mechanism, load)
            print(
                f"  load {load:.1f} {mechanism:10s} "
                f"p99 {cell['latency_us']['p99']:>10.1f} µs  "
                f"SLO viol {cell['slo_violation_rate'] * 100:>6.2f}%  "
                f"overhead {cell['overhead_frac'] * 100:>6.2f}%"
            )

    # the paper's serving argument, as shape assertions
    for load in LOADS:
        baseline = _cell(report, "baseline", load)
        ctxback = _cell(report, "ctxback", load)
        assert (
            ctxback["latency_us"]["p99"] <= baseline["latency_us"]["p99"]
        ), (load, ctxback, baseline)
        assert (
            ctxback["slo_violation_rate"] <= baseline["slo_violation_rate"]
        ), (load, ctxback, baseline)
        assert ctxback["overhead_frac"] < baseline["overhead_frac"]
