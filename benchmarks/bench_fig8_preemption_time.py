"""Fig. 8: normalized execution time of the preemption routines.

Paper: CTXBack −63.1 % vs BASELINE; CS-Defer's preemption latency 34.8 %
longer than CTXBack's (44.2 % on the BLAS+DL subset) because the deferred
window executes real instructions including device-memory accesses;
CTXBack+CS-Defer −65.2 %.  Runs under the contended-SM configuration (see
GPUConfig.radeon_vii_contended and EXPERIMENTS.md §Fig.8).
"""

from repro.analysis import preemption_timing, render_figure

_cache: dict = {}


def timing(keys, samples):
    key = (tuple(keys) if keys else None, samples)
    if key not in _cache:
        _cache[key] = preemption_timing(keys=keys, samples=samples)
    return _cache[key]


def test_fig8_preemption_routine_time(benchmark, keys, samples):
    fig8, _fig9 = benchmark.pedantic(
        lambda: timing(keys, samples), rounds=1, iterations=1
    )
    print()
    print(render_figure(fig8))

    for row in fig8.rows:
        # the paper's per-kernel orderings
        assert row.normalized["ctxback"] < 1.0, row.key
        assert row.normalized["ctxback"] <= row.normalized["live"] + 0.02, row.key
        assert row.normalized["ckpt"] < row.normalized["ctxback"], row.key
        assert row.normalized["csdefer"] >= row.normalized["ctxback"] - 0.03, row.key

    if keys is None:
        # headline: CTXBack reduces preemption time ~63% (we allow 50-75)
        assert 50 <= fig8.mean_reduction_pct("ctxback") <= 75
        # CS-Defer pays for the deferred window's execution
        assert fig8.mean("csdefer") > fig8.mean("ctxback")
        # the combination is at least as good as CTXBack alone
        assert fig8.mean("combined") <= fig8.mean("ctxback") + 0.01
        # LIVE lands in between
        assert fig8.mean("ctxback") < fig8.mean("live") < 1.0
