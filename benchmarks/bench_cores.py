"""Fast-core vs reference-core timing: hot-loop microbench + full matrix.

Both benches drive the bare simulator (``run_reference``: no signals, no
engine, no artifact-cache round-trips in the timed region — launch specs
and mechanism prep are hoisted out) and attach their numbers to this
bench's row in ``BENCH_engine.json`` via ``record_result``:

* ``test_core_hotloop_smoke`` — one kernel, a few reps.  This is the CI
  perf-smoke gate: it fails when the fast core is below
  ``REPRO_CORE_MIN_SPEEDUP`` (default 5) times the reference core.
* ``test_core_headline_matrix`` — the full 12-kernel suite at
  ``num_warps=16`` and 4x the default iteration counts (a full SM runs
  16-64 resident warps, so the headline matrix models the multi-tenant
  load the ROADMAP targets rather than the 4-warp unit-test geometry).

Methodology: the host's effective CPU speed drifts by tens of percent
over minutes, so single absolute wall times are unreliable.  Each rep
times a core=fast sweep and a core=reference sweep back-to-back over the
same matrix, asserts both cores issued exactly the same instruction
count (they simulate identical machines), and the reported speedup is
the median ratio over ``REPRO_CORE_REPS`` reps (default 3).
"""

from __future__ import annotations

import dataclasses
import os
import statistics
import time

from repro.kernels import SUITE
from repro.sim import GPUConfig
from repro.sim.gpu import run_reference

#: perf gate: minimum fast/reference speedup before the bench fails
MIN_SPEEDUP_ENV = "REPRO_CORE_MIN_SPEEDUP"
REPS_ENV = "REPRO_CORE_REPS"

#: headline matrix geometry (see module docstring)
HEADLINE_NUM_WARPS = 16
HEADLINE_ITERATION_MULT = 4


def _min_speedup() -> float:
    return float(os.environ.get(MIN_SPEEDUP_ENV, "5"))


def _reps() -> int:
    return int(os.environ.get(REPS_ENV, "3"))


def _sweep(config: GPUConfig, keys, num_warps: int, it_mult: int):
    """Simulate every kernel in *keys* once; returns (wall_s, issues, cycles).

    Only ``run_reference`` is inside the timed region — launch-spec
    construction (input generation, register-file sizing) is identical
    work for both cores and is hoisted out.
    """
    wall = 0.0
    issues = 0
    cycles = 0
    for key in keys:
        bench = SUITE[key]
        launch = bench.launch(
            iterations=bench.default_iterations * it_mult, num_warps=num_warps
        )
        spec = launch.spec()
        started = time.perf_counter()
        result = run_reference(spec, config)
        wall += time.perf_counter() - started
        issues += result.sm.stats.issued
        cycles += result.cycles
    return wall, issues, cycles


def _compare(keys, num_warps: int, it_mult: int, reps: int) -> dict:
    cfg_fast = dataclasses.replace(GPUConfig.radeon_vii(), core="fast")
    cfg_ref = dataclasses.replace(cfg_fast, core="reference")

    # one small untimed sweep per core: first-touch costs (imports, numpy
    # buffer pools, compiled-block cache fill) are not simulation speed
    _sweep(cfg_fast, keys, num_warps, 1)
    _sweep(cfg_ref, keys, num_warps, 1)

    ratios, fast_us, ref_us, fast_cps, ref_cps = [], [], [], [], []
    issues = cycles = 0
    for _ in range(reps):
        fast_wall, issues, cycles = _sweep(cfg_fast, keys, num_warps, it_mult)
        ref_wall, ref_issues, ref_cycles = _sweep(cfg_ref, keys, num_warps, it_mult)
        assert (issues, cycles) == (ref_issues, ref_cycles), (
            "cores disagree on simulated work — run tests/test_fastcore_equiv.py"
        )
        ratios.append(ref_wall / fast_wall)
        fast_us.append(1e6 * fast_wall / issues)
        ref_us.append(1e6 * ref_wall / issues)
        fast_cps.append(cycles / fast_wall)
        ref_cps.append(cycles / ref_wall)
    return {
        "keys": list(keys),
        "num_warps": num_warps,
        "iteration_mult": it_mult,
        "reps": reps,
        "issues_per_sweep": issues,
        "cycles_per_sweep": cycles,
        "fast_us_per_issue": round(statistics.median(fast_us), 3),
        "reference_us_per_issue": round(statistics.median(ref_us), 3),
        "fast_sim_cycles_per_s": round(statistics.median(fast_cps)),
        "reference_sim_cycles_per_s": round(statistics.median(ref_cps)),
        "speedup_median": round(statistics.median(ratios), 2),
        "speedup_min": round(min(ratios), 2),
        "speedup_max": round(max(ratios), 2),
    }


def _report(label: str, stats: dict) -> None:
    print()
    print(
        f"{label}: fast {stats['fast_us_per_issue']:.2f} µs/issue "
        f"({stats['fast_sim_cycles_per_s']:,} sim cycles/s)  "
        f"reference {stats['reference_us_per_issue']:.2f} µs/issue "
        f"({stats['reference_sim_cycles_per_s']:,} sim cycles/s)  "
        f"speedup x{stats['speedup_median']:.2f} "
        f"[{stats['speedup_min']:.2f}, {stats['speedup_max']:.2f}]"
    )


def test_core_hotloop_smoke(record_result):
    """Cycles-per-second hot loop on one kernel — the CI perf gate."""
    stats = _compare(["mm"], num_warps=HEADLINE_NUM_WARPS, it_mult=2, reps=_reps())
    record_result(cores=stats)
    _report("hotloop mm", stats)
    assert stats["speedup_median"] >= _min_speedup(), stats


def test_core_headline_matrix(record_result):
    """Full 12-kernel matrix, both cores, serial, median-of-reps ratio."""
    stats = _compare(
        sorted(SUITE),
        num_warps=HEADLINE_NUM_WARPS,
        it_mult=HEADLINE_ITERATION_MULT,
        reps=_reps(),
    )
    record_result(cores=stats)
    _report("headline 12-kernel matrix", stats)
    assert stats["speedup_median"] >= _min_speedup(), stats
