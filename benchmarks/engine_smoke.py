"""Cold-then-warm smoke benchmark for the experiment engine.

Runs the headline sweep (Table I + Figs. 7-10 inputs) on a small kernel
subset three times:

1. **cold / serial** — fresh cache, ``jobs=1``;
2. **cold / parallel** — another fresh cache, ``jobs=N`` (process pool);
3. **warm** — re-run against run 2's cache, ``jobs=1`` (pure cache loads).

and writes a timing JSON with the measured speedups.  CI runs this on two
kernels and uploads the JSON as an artifact; it is also the quickest local
sanity check that the engine, the cache and the figure drivers agree:
the three runs must produce identical headline numbers.

Usage::

    python benchmarks/engine_smoke.py --keys mm,km --jobs 4 \
        --output BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import tempfile
import time
from pathlib import Path


def run_once(keys, samples, jobs, cache_root):
    from repro.analysis import ExperimentEngine, configure_cache, headline

    configure_cache(root=cache_root, enabled=True)
    engine = ExperimentEngine(jobs)
    started = time.perf_counter()
    result = headline(keys=keys, samples=samples, engine=engine)
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 3),
        "jobs": engine.jobs,
        "units": engine.report.units,
        "headline": dataclasses.asdict(result),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keys", default="mm,km",
                        help="comma-separated kernel subset (default mm,km)")
    parser.add_argument("--samples", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the cold/parallel run")
    parser.add_argument("--output", default="BENCH_smoke.json")
    args = parser.parse_args(argv)
    keys = [k for k in args.keys.split(",") if k]

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        tmp = Path(tmp)
        cold_serial = run_once(keys, args.samples, 1, tmp / "a")
        cold_parallel = run_once(keys, args.samples, args.jobs, tmp / "b")
        # fresh ArtifactCache on run 2's root: warm hits come from disk
        warm = run_once(keys, args.samples, 1, tmp / "b")

    identical = (
        cold_serial["headline"] == cold_parallel["headline"] == warm["headline"]
    )
    report = {
        "keys": keys,
        "samples": args.samples,
        "cold_serial": cold_serial,
        "cold_parallel": cold_parallel,
        "warm": warm,
        "parallel_speedup": round(
            cold_serial["wall_s"] / max(cold_parallel["wall_s"], 1e-9), 2
        ),
        "warm_speedup": round(
            cold_serial["wall_s"] / max(warm["wall_s"], 1e-9), 2
        ),
        "results_identical": identical,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not identical:
        print("ERROR: serial, parallel and warm runs disagree")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
