"""Fig. 9: normalized execution time of the resuming routines.

Paper: CTXBack −50.0 % vs BASELINE (loads + re-execution of the in-between
instructions); CS-Defer −65.6 % (plain reload, no re-execution — the best
resumer); CKPT 318 % of BASELINE (replays up to interval−1 iterations from
the last checkpoint) — the trade-off §II-B motivates CTXBack with.
"""

from repro.analysis import render_figure

from bench_fig8_preemption_time import timing


def test_fig9_resuming_routine_time(benchmark, keys, samples):
    _fig8, fig9 = benchmark.pedantic(
        lambda: timing(keys, samples), rounds=1, iterations=1
    )
    print()
    print(render_figure(fig9))

    for row in fig9.rows:
        assert row.normalized["ctxback"] < 1.0, row.key

    # CKPT's rollback replay makes it the worst resumer on most kernels
    # (KM-style ALU-heavy iterations replay cheaply and can dodge it)
    worst = sum(
        1
        for row in fig9.rows
        if row.normalized["ckpt"] == max(row.normalized.values())
    )
    assert worst >= len(fig9.rows) // 2

    if keys is None:
        # headline: CTXBack reduces resume time ~50% (we allow 40-70)
        assert 40 <= fig9.mean_reduction_pct("ctxback") <= 70
        # CS-Defer resumes fastest: a plain reload of a small context
        assert fig9.mean("csdefer") <= fig9.mean("ctxback")
        assert 55 <= fig9.mean_reduction_pct("csdefer") <= 75  # paper 65.6
        # CKPT is worse than BASELINE on average (paper 3.18x)
        assert fig9.mean("ckpt") > 1.0
        # CTXBack's resume still beats LIVE's on average (§V-C)
        assert fig9.mean("ctxback") < fig9.mean("live")
